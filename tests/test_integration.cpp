// End-to-end integration tests: the full pipelines a user of the library
// would run, crossing every module boundary.

#include <gtest/gtest.h>

#include <bit>

#include "baselines/transformation_based.hpp"
#include "bench_suite/registry.hpp"
#include "core/synthesizer.hpp"
#include "esop/esop.hpp"
#include "esop/minimize.hpp"
#include "io/spec.hpp"
#include "io/tfc.hpp"
#include "rev/embedding.hpp"
#include "rev/pprm_transform.hpp"
#include "rev/quantum_cost.hpp"
#include "templates/simplify.hpp"

namespace rmrls {
namespace {

TEST(Integration, EmbedSynthesizeVerifyAdder) {
  // The paper's Section II flow: irreversible augmented adder -> reversible
  // embedding -> RMRLS -> verified Toffoli cascade (Fig. 8 analogue).
  IrreversibleSpec spec;
  spec.num_inputs = 3;
  spec.num_outputs = 3;
  spec.outputs.resize(8);
  for (std::uint64_t x = 0; x < 8; ++x) {
    const int ones = std::popcount(x);
    const int a = static_cast<int>(x & 1);
    const int b = static_cast<int>((x >> 1) & 1);
    spec.outputs[x] = static_cast<std::uint64_t>((ones >= 2) | ((ones & 1) << 1) |
                                                 ((a ^ b) << 2));
  }
  const Embedding e = embed(spec);
  SynthesisOptions o;
  o.max_nodes = 100000;
  const SynthesisResult r = synthesize(e.table, o);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(implements(r.circuit, e.table));
  // The paper's hand-crafted embedding (Fig. 2(b), tested via Example 8)
  // needs 4 gates; our automatic occurrence-counter embedding is a harder
  // function, so allow headroom while still catching regressions.
  EXPECT_LE(r.circuit.gate_count(), 16);
}

TEST(Integration, EsopPipelineMatchesDirectTransform) {
  // Section II-E: spec -> ESOP (minimized) -> PPRM must equal the
  // canonical PPRM from the Moebius transform.
  const TruthTable fig1({1, 0, 7, 2, 3, 4, 5, 6});
  const Pprm direct = pprm_of_truth_table(fig1);
  for (int out = 0; out < 3; ++out) {
    std::vector<std::uint8_t> f(8);
    for (std::uint64_t x = 0; x < 8; ++x) {
      f[x] = static_cast<std::uint8_t>((fig1.apply(x) >> out) & 1);
    }
    const Esop minimized = minimize_esop(Esop::from_truth_vector(f)).esop;
    EXPECT_EQ(minimized.to_pprm(), direct.output(out)) << "output " << out;
  }
}

TEST(Integration, SynthesizeWriteTfcReadVerify) {
  const TruthTable spec({7, 1, 4, 3, 0, 2, 6, 5});  // 3_17
  SynthesisOptions o;
  o.max_nodes = 20000;
  const SynthesisResult r = synthesize(spec, o);
  ASSERT_TRUE(r.success);
  const Circuit back = read_tfc(write_tfc(r.circuit));
  EXPECT_TRUE(implements(back, spec));
}

TEST(Integration, BenchmarkPipelineSmall) {
  // Synthesize a couple of Table IV entries end to end and verify against
  // both representations.
  SynthesisOptions o;
  o.max_nodes = 60000;
  for (const char* name : {"3_17", "rd32", "xor5", "graycode6"}) {
    const suite::Benchmark b = suite::get_benchmark(name);
    const SynthesisResult r = synthesize(b.pprm, o);
    ASSERT_TRUE(r.success) << name;
    EXPECT_TRUE(implements(r.circuit, b.pprm)) << name;
    if (b.table) EXPECT_TRUE(implements(r.circuit, *b.table)) << name;
    EXPECT_GT(quantum_cost(r.circuit), 0) << name;
  }
}

TEST(Integration, LinearBenchmarksSynthesizeAtPaperSize) {
  // graycode6 must come out as 5 CNOTs, cost 5 (Table IV exact match).
  SynthesisOptions o;
  o.max_nodes = 60000;
  const suite::Benchmark g6 = suite::get_benchmark("graycode6");
  const SynthesisResult r = synthesize(g6.pprm, o);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.circuit.gate_count(), 5);
  EXPECT_EQ(quantum_cost(r.circuit), 5);
  // xor5: 4 CNOTs, cost 4.
  const suite::Benchmark x5 = suite::get_benchmark("xor5");
  const SynthesisResult rx = synthesize(x5.pprm, o);
  ASSERT_TRUE(rx.success);
  EXPECT_EQ(rx.circuit.gate_count(), 4);
  EXPECT_EQ(quantum_cost(rx.circuit), 4);
}

TEST(Integration, WideStructuralBenchmarkSynthesizes) {
  // shift10 (12 lines) exercises the no-truth-table path end to end.
  SynthesisOptions o;
  o.max_nodes = 50000;
  o.stop_at_first_solution = true;
  const suite::Benchmark s = suite::get_benchmark("shift10");
  const SynthesisResult r = synthesize(s.pprm, o);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(implements(r.circuit, s.pprm));
}

TEST(Integration, MmdPlusTemplatesVersusRmrls) {
  // Both synthesis routes end at a correct circuit; RMRLS should not be
  // dramatically worse than MMD on a small benchmark.
  const TruthTable spec = *suite::get_benchmark("3_17").table;
  SynthesisOptions o;
  o.max_nodes = 20000;
  const SynthesisResult rmrls_result = synthesize(spec, o);
  const Circuit mmd = simplify_templates(synthesize_transformation_bidir(spec))
                          .circuit;
  ASSERT_TRUE(rmrls_result.success);
  EXPECT_TRUE(implements(mmd, spec));
  EXPECT_LE(rmrls_result.circuit.gate_count(), mmd.gate_count() + 2);
}

TEST(Integration, SpecStringToCircuitString) {
  // The CLI's core path: parse -> synthesize -> render.
  const TruthTable spec = parse_permutation_spec("{1, 0, 7, 2, 3, 4, 5, 6}");
  SynthesisOptions o;
  o.max_nodes = 20000;
  const SynthesisResult r = synthesize(spec, o);
  ASSERT_TRUE(r.success);
  EXPECT_FALSE(r.circuit.to_string().empty());
  EXPECT_EQ(r.circuit.to_string().find("TOF"), 0u);
}

}  // namespace
}  // namespace rmrls
