// Tests for the orbit canonicalizer (rev/canonical.hpp): round-trips,
// orbit-invariance of the key across both scan regimes, the fallback
// behaviours, and concurrent use.

#include "rev/canonical.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <thread>
#include <vector>

#include "rev/equivalence.hpp"
#include "rev/random.hpp"

namespace rmrls {
namespace {

std::vector<int> random_sigma(int n, std::mt19937_64& rng) {
  std::vector<int> sigma(n);
  std::iota(sigma.begin(), sigma.end(), 0);
  std::shuffle(sigma.begin(), sigma.end(), rng);
  return sigma;
}

TEST(Canonical, ConjugateRelabelsWires) {
  // f(x) = x ^ 1 flips wire 0; conjugating by sigma with sigma[0] = 2 must
  // yield x ^ 4.
  TruthTable f({1, 0, 3, 2, 5, 4, 7, 6});
  const TruthTable g = conjugate(f, {2, 0, 1});
  for (std::uint64_t x = 0; x < 8; ++x) EXPECT_EQ(g(x), x ^ 4u);
  EXPECT_THROW((void)conjugate(f, {0, 1}), std::invalid_argument);
  EXPECT_THROW((void)conjugate(f, {0, 0, 1}), std::invalid_argument);
}

TEST(Canonical, SpecRoundTripsThroughTransform) {
  std::mt19937_64 rng(1001);
  for (int n = 3; n <= 8; ++n) {
    for (int rep = 0; rep < 8; ++rep) {
      const TruthTable spec = random_reversible_function(n, rng);
      const CanonicalForm form = canonicalize(spec);
      EXPECT_EQ(reconstruct_spec(form.representative, form.transform), spec)
          << "n=" << n << " rep=" << rep;
    }
  }
}

TEST(Canonical, CircuitRoundTripsToEquivalence) {
  // A circuit for the representative, reconstructed through the transform,
  // must realize the original function exactly — the property the cache
  // relies on for every hit.
  std::mt19937_64 rng(1002);
  for (int n = 3; n <= 8; ++n) {
    for (int rep = 0; rep < 6; ++rep) {
      const Circuit c = random_circuit(n, 3 * n, GateLibrary::kGT, rng);
      const TruthTable spec = c.to_truth_table();
      const CanonicalForm form = canonicalize(spec);
      const Circuit canonical = canonical_circuit_of(c, form.transform);
      EXPECT_EQ(canonical.to_truth_table(), form.representative);
      const Circuit rebuilt = reconstruct_circuit(canonical, form.transform);
      EXPECT_TRUE(equivalent(rebuilt, c)) << "n=" << n << " rep=" << rep;
    }
  }
}

TEST(Canonical, OrbitMembersShareRepresentativeAndKey) {
  // Random conjugations and inversions of one spec must all canonicalize
  // to the identical representative and key — in the exact regime
  // (n <= 6) and the signature-pruned one (n = 7, 8) alike.
  std::mt19937_64 rng(1003);
  for (int n = 3; n <= 8; ++n) {
    for (int rep = 0; rep < 4; ++rep) {
      const TruthTable spec = random_reversible_function(n, rng);
      const CanonicalForm base = canonicalize(spec);
      for (int k = 0; k < 6; ++k) {
        TruthTable member = conjugate(spec, random_sigma(n, rng));
        if (rng() & 1u) member = member.inverse();
        const CanonicalForm form = canonicalize(member);
        EXPECT_EQ(form.representative, base.representative)
            << "n=" << n << " rep=" << rep << " k=" << k;
        EXPECT_EQ(form.key, base.key);
        EXPECT_EQ(reconstruct_spec(form.representative, form.transform),
                  member);
      }
    }
  }
}

TEST(Canonical, RepresentativeIsAFixpoint) {
  std::mt19937_64 rng(1004);
  for (int n = 3; n <= 7; ++n) {
    const TruthTable spec = random_reversible_function(n, rng);
    const CanonicalForm form = canonicalize(spec);
    const CanonicalForm again = canonicalize(form.representative);
    EXPECT_EQ(again.representative, form.representative);
    EXPECT_EQ(again.key, form.key);
  }
}

TEST(Canonical, WidthCapFallsBackToIdentityOrbit) {
  std::mt19937_64 rng(1005);
  const TruthTable spec = random_reversible_function(5, rng);
  CanonicalOptions options;
  options.max_vars = 4;
  const CanonicalForm form = canonicalize(spec, options);
  EXPECT_TRUE(form.transform.is_identity());
  EXPECT_EQ(form.representative, spec);
  // Exact resubmission still keys identically.
  EXPECT_EQ(canonicalize(spec, options).key, form.key);
}

TEST(Canonical, CandidateBudgetFallsBackToIdentityOrbit) {
  // With a one-candidate budget in the signature regime, any spec whose
  // signature blocks admit more than one relabeling must degrade to the
  // identity orbit instead of scanning.
  std::mt19937_64 rng(1006);
  const TruthTable spec = random_reversible_function(7, rng);
  CanonicalOptions options;
  options.max_candidates = 0;
  const CanonicalForm form = canonicalize(spec, options);
  EXPECT_TRUE(form.transform.is_identity());
  EXPECT_EQ(form.representative, spec);
}

TEST(Canonical, IdentityAndTrivialSpecs) {
  const CanonicalForm id = canonicalize(TruthTable::identity(4));
  EXPECT_EQ(id.representative, TruthTable::identity(4));
  // One-variable orbit: NOT is its own representative under both group
  // actions (the only sigma is the identity, and NOT is self-inverse).
  const CanonicalForm not1 = canonicalize(TruthTable({1, 0}));
  EXPECT_EQ(not1.representative, TruthTable({1, 0}));
}

TEST(Canonical, SingleWireFlipsShareOneOrbit) {
  // x ^ 1, x ^ 2 and x ^ 4 on three wires are all relabelings of each
  // other.
  const auto flip = [](int bit) {
    std::vector<std::uint64_t> image(8);
    for (std::uint64_t x = 0; x < 8; ++x) {
      image[x] = x ^ (std::uint64_t{1} << bit);
    }
    return TruthTable(std::move(image));
  };
  const std::uint64_t key = canonicalize(flip(0)).key;
  EXPECT_EQ(canonicalize(flip(1)).key, key);
  EXPECT_EQ(canonicalize(flip(2)).key, key);
}

TEST(Canonical, ConcurrentCanonicalizationIsRaceFree) {
  // The canonicalizer is called from every batch worker concurrently; it
  // must be a pure function of its arguments. Run under the tsan preset.
  std::mt19937_64 rng(1007);
  const TruthTable spec = random_reversible_function(6, rng);
  const CanonicalForm expected = canonicalize(spec);
  std::vector<std::thread> threads;
  std::vector<std::uint64_t> keys(8, 0);
  threads.reserve(keys.size());
  for (std::size_t t = 0; t < keys.size(); ++t) {
    threads.emplace_back([&spec, &keys, t] {
      keys[t] = canonicalize(spec).key;
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::uint64_t k : keys) EXPECT_EQ(k, expected.key);
}

}  // namespace
}  // namespace rmrls
