// Tests for mixed-polarity gates and sandwich compression.

#include "rev/polarity.hpp"

#include <gtest/gtest.h>

#include <random>

#include "rev/random.hpp"

namespace rmrls {
namespace {

TEST(PolarityGate, FiresOnMatchingPolarity) {
  // TOF3(a, b'; c): fires when a = 1 and b = 0.
  const PolarityGate g(cube_of_var(0) | cube_of_var(1), cube_of_var(0), 2);
  EXPECT_EQ(g.apply(0b001), 0b101u);
  EXPECT_EQ(g.apply(0b011), 0b011u);  // b = 1: no fire
  EXPECT_EQ(g.apply(0b000), 0b000u);  // a = 0: no fire
  EXPECT_EQ(g.apply(0b101), 0b001u);  // self-inverse
}

TEST(PolarityGate, Validation) {
  EXPECT_THROW(PolarityGate(cube_of_var(1), cube_of_var(0), 2),
               std::invalid_argument);  // polarity outside controls
  EXPECT_THROW(PolarityGate(cube_of_var(1), cube_of_var(1), 1),
               std::invalid_argument);  // target is a control
}

TEST(PolarityGate, Rendering) {
  const PolarityGate g(cube_of_var(0) | cube_of_var(1), cube_of_var(0), 2);
  EXPECT_EQ(polarity_gate_to_string(g, 3), "TOF3(a, b'; c)");
}

TEST(PolarityCircuit, ToPositiveExpandsSandwiches) {
  PolarityCircuit pc(3);
  pc.append(PolarityGate(cube_of_var(0) | cube_of_var(1), cube_of_var(0), 2));
  const Circuit pos = pc.to_positive();
  // NOT(b) TOF3(a,b;c) NOT(b): three positive gates.
  EXPECT_EQ(pos.gate_count(), 3);
  for (std::uint64_t x = 0; x < 8; ++x) {
    EXPECT_EQ(pos.simulate(x), pc.simulate(x));
  }
}

TEST(PolarityCircuit, AdjacentSandwichesShareNots) {
  // Two consecutive gates with the same negative control need only one
  // sandwich, not two.
  PolarityCircuit pc(3);
  const Cube ab = cube_of_var(0) | cube_of_var(1);
  pc.append(PolarityGate(ab, cube_of_var(0), 2));
  pc.append(PolarityGate(ab, cube_of_var(0), 2));
  const Circuit pos = pc.to_positive();
  EXPECT_EQ(pos.gate_count(), 4);  // NOT g g NOT, not NOT g NOT NOT g NOT
  for (std::uint64_t x = 0; x < 8; ++x) {
    EXPECT_EQ(pos.simulate(x), pc.simulate(x));
  }
}

TEST(Compress, FoldsASimpleSandwich) {
  Circuit c(3);
  c.append(Gate(kConstOne, 1));                          // NOT b
  c.append(Gate(cube_of_var(0) | cube_of_var(1), 2));    // TOF3(a, b; c)
  c.append(Gate(kConstOne, 1));                          // NOT b
  const PolarityCompressResult r = compress_polarity(c);
  EXPECT_EQ(r.sandwiches_folded, 1);
  EXPECT_EQ(r.circuit.gate_count(), 1);
  EXPECT_EQ(r.circuit.gates()[0].negative_controls(), cube_of_var(1));
  for (std::uint64_t x = 0; x < 8; ++x) {
    EXPECT_EQ(r.circuit.simulate(x), c.simulate(x));
  }
}

TEST(Compress, LeavesNonSandwichesAlone) {
  Circuit c(3);
  c.append(Gate(kConstOne, 1));
  c.append(Gate(cube_of_var(1), 2));
  c.append(Gate(cube_of_var(1), 0));  // second reader: cannot fold once
  c.append(Gate(kConstOne, 1));
  const PolarityCompressResult r = compress_polarity(c);
  EXPECT_EQ(r.sandwiches_folded, 0);
  EXPECT_EQ(r.circuit.gate_count(), 4);
}

TEST(Compress, RoundTripsThroughPositive) {
  Circuit c(4);
  c.append(Gate(kConstOne, 0));
  c.append(Gate(cube_of_var(0) | cube_of_var(2), 1));
  c.append(Gate(kConstOne, 0));
  c.append(Gate(cube_of_var(1), 3));
  const PolarityCompressResult r = compress_polarity(c);
  EXPECT_EQ(r.gates_saved, 2);
  const Circuit back = r.circuit.to_positive();
  for (std::uint64_t x = 0; x < 16; ++x) {
    EXPECT_EQ(back.simulate(x), c.simulate(x));
  }
}

class CompressProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(CompressProperty, PreservesFunctionNeverGrows) {
  std::mt19937_64 rng(GetParam());
  Circuit c = random_circuit(4, 10, GateLibrary::kNCT, rng);
  // Inject a sandwich so most seeds have something to fold.
  Circuit padded(4);
  padded.append(Gate(kConstOne, 2));
  for (const Gate& g : c.gates()) padded.append(g);
  padded.append(Gate(kConstOne, 2));
  const PolarityCompressResult r = compress_polarity(padded);
  EXPECT_LE(r.circuit.gate_count(), padded.gate_count());
  for (std::uint64_t x = 0; x < 16; ++x) {
    EXPECT_EQ(r.circuit.simulate(x), padded.simulate(x)) << "x=" << x;
  }
  // And the expansion back to positive gates is faithful too.
  const Circuit back = r.circuit.to_positive();
  for (std::uint64_t x = 0; x < 16; ++x) {
    EXPECT_EQ(back.simulate(x), padded.simulate(x));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressProperty,
                         ::testing::Range(400u, 420u));

}  // namespace
}  // namespace rmrls
