// Fault-injection suite for the rmrls-serve daemon (docs/serving.md):
// protocol roundtrips, malformed and oversized frames, queue-cap load
// shedding (kUnavailable, never a hang), disconnect-equals-cancel, the
// SIGTERM graceful drain, and a concurrent soak mixing healthy, slow,
// disconnecting, and malformed clients. Runs under the tsan/asan presets
// via the concurrency/sanitize labels, so every path here must be
// race- and leak-clean, not just functionally right.

#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "io/spec.hpp"
#include "obs/json.hpp"
#include "obs/metrics_validate.hpp"
#include "rev/random.hpp"
#include "serve/frame.hpp"
#include "serve/server.hpp"

namespace rmrls {
namespace {

using std::chrono::milliseconds;
using Clock = std::chrono::steady_clock;

constexpr const char* kFig1Spec = "{1, 0, 7, 2, 3, 4, 5, 6}";

/// A spec the cascade cannot finish early: an 8-variable uniformly random
/// permutation. Paired with daemon options that disable the fallbacks and
/// the node budget, a job on it runs until its deadline or its cancel
/// token fires — exactly what the cancellation tests need.
std::string hard_spec_text() {
  std::mt19937_64 rng(11);
  return write_permutation_spec(random_reversible_function(8, rng));
}

/// Daemon options tuned for tests: unix socket in a caller-owned temp
/// dir, fast poll so disconnect-cancel latency is measurable, and a
/// resilience base with no fallbacks or node budget (see hard_spec_text).
ServeOptions test_options(const std::string& socket_path) {
  ServeOptions o;
  o.socket_path = socket_path;
  o.workers = 2;
  o.poll_interval = milliseconds(10);
  o.default_deadline = milliseconds(1000);
  o.drain_deadline = milliseconds(2000);
  o.resilience.search.max_nodes = 0;
  o.resilience.enable_greedy = false;
  o.resilience.enable_transformation = false;
  return o;
}

/// Owns a short-pathed temp dir (sockaddr_un caps sun_path around 107
/// bytes, so the build tree is not a safe place for sockets).
class TempDir {
 public:
  TempDir() {
    char templ[] = "/tmp/rmrls_serve_XXXXXX";
    const char* made = ::mkdtemp(templ);
    if (made != nullptr) path_ = made;
  }
  ~TempDir() {
    if (path_.empty()) return;
    // Best-effort cleanup; the daemon unlinks its socket on shutdown.
    std::remove((path_ + "/serve.sock").c_str());
    std::remove((path_ + "/metrics.jsonl").c_str());
    ::rmdir(path_.c_str());
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Runs a ServeDaemon on its own thread and joins it on destruction.
class DaemonHarness {
 public:
  explicit DaemonHarness(ServeOptions options)
      : daemon_(std::move(options)) {}
  ~DaemonHarness() { stop(); }

  [[nodiscard]] bool start() {
    const Status bound = daemon_.start();
    if (!bound.ok()) {
      ADD_FAILURE() << "daemon start failed: " << bound.to_string();
      return false;
    }
    thread_ = std::thread([this] { exit_code_ = daemon_.run(); });
    return true;
  }

  /// Begins drain (idempotent) and joins run(); returns its exit code.
  int stop() {
    if (thread_.joinable()) {
      daemon_.begin_drain();
      thread_.join();
    }
    return exit_code_.load();
  }

  [[nodiscard]] ServeDaemon& daemon() { return daemon_; }

 private:
  ServeDaemon daemon_;
  std::thread thread_;
  std::atomic<int> exit_code_{-1};
};

/// A blocking test client over the unix socket, with frame-level reads.
class Client {
 public:
  explicit Client(const std::string& socket_path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~Client() { close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool send_line(const std::string& frame) {
    std::string wire = frame;
    wire.push_back('\n');
    return send_raw(wire);
  }

  bool send_raw(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Next frame as parsed JSON; nullopt on timeout or EOF.
  std::optional<JsonValue> read_frame(milliseconds timeout) {
    const auto give_up = Clock::now() + timeout;
    for (;;) {
      if (std::optional<std::string> line = splitter_.next()) {
        std::optional<JsonValue> v = json_parse(*line);
        EXPECT_TRUE(v.has_value()) << "unparseable frame: " << *line;
        return v;
      }
      const auto left = std::chrono::duration_cast<milliseconds>(
          give_up - Clock::now());
      if (left.count() <= 0 || fd_ < 0) return std::nullopt;
      pollfd p{fd_, POLLIN, 0};
      const int rc = ::poll(&p, 1, static_cast<int>(left.count()));
      if (rc < 0 && errno != EINTR) return std::nullopt;
      if (rc <= 0) continue;
      char buf[4096];
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n == 0) return std::nullopt;  // EOF
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN) continue;
        return std::nullopt;
      }
      splitter_.feed(buf, static_cast<std::size_t>(n));
    }
  }

  /// Reads until a frame with the given record kind arrives; frames of
  /// other kinds (heartbeats, stray results) are collected in skipped().
  std::optional<JsonValue> read_until(const std::string& record,
                                      milliseconds timeout) {
    const auto give_up = Clock::now() + timeout;
    for (;;) {
      const auto left = std::chrono::duration_cast<milliseconds>(
          give_up - Clock::now());
      if (left.count() <= 0) return std::nullopt;
      std::optional<JsonValue> v = read_frame(left);
      if (!v) return std::nullopt;
      const JsonValue* kind = v->find("record");
      if (kind != nullptr && kind->string == record) return v;
      skipped_.push_back(*std::move(v));
    }
  }

  [[nodiscard]] const std::vector<JsonValue>& skipped() const {
    return skipped_;
  }

 private:
  int fd_ = -1;
  FrameSplitter splitter_;
  std::vector<JsonValue> skipped_;
};

std::string submit_frame(const std::string& id, const std::string& spec,
                         int time_ms, bool tfc = false) {
  std::ostringstream os;
  os << "{\"op\": \"submit\", \"id\": \"" << id << "\", \"spec\": \"" << spec
     << "\"";
  if (time_ms > 0) os << ", \"time_ms\": " << time_ms;
  if (tfc) os << ", \"tfc\": true";
  os << "}";
  return os.str();
}

const char* field_string(const JsonValue& v, const char* key) {
  const JsonValue* f = v.find(key);
  return f != nullptr && f->is_string() ? f->string.c_str() : "<missing>";
}

double field_number(const JsonValue& v, const char* key) {
  const JsonValue* f = v.find(key);
  return f != nullptr && f->is_number() ? f->number : -999;
}

TEST(ServeProtocol, PingPongRoundtrip) {
  TempDir dir;
  ASSERT_FALSE(dir.path().empty());
  DaemonHarness harness(test_options(dir.path() + "/serve.sock"));
  ASSERT_TRUE(harness.start());

  Client client(dir.path() + "/serve.sock");
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_line("{\"op\": \"ping\", \"id\": \"p1\"}"));
  const std::optional<JsonValue> pong =
      client.read_until("pong", milliseconds(2000));
  ASSERT_TRUE(pong.has_value());
  EXPECT_STREQ(field_string(*pong, "id"), "p1");
  EXPECT_STREQ(field_string(*pong, "schema"), kServeSchemaV1);
  EXPECT_EQ(harness.stop(), 0);
}

TEST(ServeProtocol, SubmitReturnsVerifiedCircuit) {
  TempDir dir;
  ASSERT_FALSE(dir.path().empty());
  ServeOptions options = test_options(dir.path() + "/serve.sock");
  // Fig. 1 solves within the primary search; fallbacks stay off.
  DaemonHarness harness(std::move(options));
  ASSERT_TRUE(harness.start());

  Client client(dir.path() + "/serve.sock");
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_line(submit_frame("j1", kFig1Spec, 5000, true)));
  const std::optional<JsonValue> accepted =
      client.read_until("accepted", milliseconds(2000));
  ASSERT_TRUE(accepted.has_value());
  // The ack carries the job's trace id — 16 hex digits, the same id its
  // metrics record will carry.
  EXPECT_EQ(std::strlen(field_string(*accepted, "trace_id")), 16u);

  const std::optional<JsonValue> result =
      client.read_until("result", milliseconds(10000));
  ASSERT_TRUE(result.has_value());
  EXPECT_STREQ(field_string(*result, "id"), "j1");
  const JsonValue* success = result->find("success");
  ASSERT_NE(success, nullptr);
  EXPECT_TRUE(success->boolean);
  const JsonValue* verified = result->find("verified");
  ASSERT_NE(verified, nullptr);
  EXPECT_TRUE(verified->boolean);
  EXPECT_GT(field_number(*result, "gates"), 0);
  // want_tfc: the circuit itself rides along as TFC text.
  const JsonValue* tfc = result->find("tfc");
  ASSERT_NE(tfc, nullptr);
  EXPECT_NE(tfc->string.find(".v"), std::string::npos);
  EXPECT_EQ(harness.stop(), 0);
}

TEST(ServeProtocol, MalformedFrameKeepsSessionAlive) {
  TempDir dir;
  ASSERT_FALSE(dir.path().empty());
  DaemonHarness harness(test_options(dir.path() + "/serve.sock"));
  ASSERT_TRUE(harness.start());

  Client client(dir.path() + "/serve.sock");
  ASSERT_TRUE(client.connected());
  // Three distinct poisons: not JSON, JSON but no op, a bad spec. Each
  // must earn an error frame — and the session must survive all three.
  ASSERT_TRUE(client.send_line("this is not json"));
  std::optional<JsonValue> err =
      client.read_until("error", milliseconds(2000));
  ASSERT_TRUE(err.has_value());
  EXPECT_STREQ(field_string(*err, "status"), "parse_error");

  ASSERT_TRUE(client.send_line("{\"id\": \"x\"}"));
  err = client.read_until("error", milliseconds(2000));
  ASSERT_TRUE(err.has_value());

  ASSERT_TRUE(client.send_line(
      submit_frame("bad", "{0, 0, 1, 2}", 0)));  // non-bijective
  err = client.read_until("error", milliseconds(2000));
  ASSERT_TRUE(err.has_value());
  EXPECT_STREQ(field_string(*err, "id"), "bad");

  // Still alive?
  ASSERT_TRUE(client.send_line("{\"op\": \"ping\", \"id\": \"alive\"}"));
  const std::optional<JsonValue> pong =
      client.read_until("pong", milliseconds(2000));
  ASSERT_TRUE(pong.has_value());
  EXPECT_STREQ(field_string(*pong, "id"), "alive");

  EXPECT_EQ(harness.stop(), 0);
  EXPECT_GE(harness.daemon().stats().malformed, 3u);
}

TEST(ServeProtocol, OversizedFrameGetsErrorThenClose) {
  TempDir dir;
  ASSERT_FALSE(dir.path().empty());
  DaemonHarness harness(test_options(dir.path() + "/serve.sock"));
  ASSERT_TRUE(harness.start());

  Client client(dir.path() + "/serve.sock");
  ASSERT_TRUE(client.connected());
  // One "line" past kMaxFrameBytes with no newline: the splitter latches
  // overflow, the daemon answers once and hangs up.
  // The daemon may hang up while we are still writing; a short write
  // here is fine (MSG_NOSIGNAL on our side too, via send_raw).
  const std::string flood(kMaxFrameBytes + 4096, 'x');
  client.send_raw(flood);
  const std::optional<JsonValue> err =
      client.read_until("error", milliseconds(5000));
  ASSERT_TRUE(err.has_value());
  EXPECT_STREQ(field_string(*err, "status"), "parse_error");
  // Next read must be EOF (nullopt without a frame), not more service.
  EXPECT_FALSE(client.read_frame(milliseconds(2000)).has_value());
  EXPECT_EQ(harness.stop(), 0);
}

TEST(ServeRobustness, QueueCapShedsWithUnavailable) {
  TempDir dir;
  ASSERT_FALSE(dir.path().empty());
  ServeOptions options = test_options(dir.path() + "/serve.sock");
  options.workers = 1;
  options.queue_cap = 1;
  DaemonHarness harness(std::move(options));
  ASSERT_TRUE(harness.start());

  const std::string hard = hard_spec_text();
  Client client(dir.path() + "/serve.sock");
  ASSERT_TRUE(client.connected());
  // Four hard jobs into one worker and one queue slot: at most two can be
  // admitted (one running, one queued); at least two must be shed — with
  // kUnavailable immediately, never by queueing unboundedly or hanging.
  const auto t0 = Clock::now();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client.send_line(
        submit_frame("q" + std::to_string(i), hard, 400)));
  }
  int accepted = 0;
  int shed = 0;
  for (int i = 0; i < 4; ++i) {
    std::optional<JsonValue> v = client.read_frame(milliseconds(5000));
    ASSERT_TRUE(v.has_value()) << "response " << i << " never arrived";
    const std::string record = field_string(*v, "record");
    if (record == "accepted") {
      ++accepted;
    } else if (record == "error") {
      ++shed;
      EXPECT_STREQ(field_string(*v, "status"), "unavailable");
      EXPECT_EQ(field_number(*v, "exit_code"), 7);
    } else {
      ADD_FAILURE() << "unexpected record " << record;
    }
  }
  const auto acks = std::chrono::duration_cast<milliseconds>(
      Clock::now() - t0);
  EXPECT_EQ(accepted + shed, 4);
  EXPECT_LE(accepted, 2);
  EXPECT_GE(shed, 2);
  // Shedding is immediate — well before the 400 ms jobs could finish.
  EXPECT_LT(acks.count(), 4000);

  // The admitted jobs still complete (budget-exhausted, not wedged).
  for (int i = 0; i < accepted; ++i) {
    const std::optional<JsonValue> result =
        client.read_until("result", milliseconds(10000));
    ASSERT_TRUE(result.has_value());
    const JsonValue* success = result->find("success");
    ASSERT_NE(success, nullptr);
    EXPECT_FALSE(success->boolean);
  }
  EXPECT_EQ(harness.stop(), 0);
  EXPECT_EQ(harness.daemon().stats().shed, static_cast<std::uint64_t>(shed));
}

TEST(ServeRobustness, DisconnectCancelsInflightJob) {
  TempDir dir;
  ASSERT_FALSE(dir.path().empty());
  ServeOptions options = test_options(dir.path() + "/serve.sock");
  options.workers = 1;
  DaemonHarness harness(std::move(options));
  ASSERT_TRUE(harness.start());

  {
    Client client(dir.path() + "/serve.sock");
    ASSERT_TRUE(client.connected());
    // A 10 s job the engines cannot finish early...
    ASSERT_TRUE(client.send_line(submit_frame("gone", hard_spec_text(),
                                              10000)));
    ASSERT_TRUE(
        client.read_until("accepted", milliseconds(2000)).has_value());
  }  // ...whose client hangs up here.

  // Disconnect must cancel the job promptly — the poll loop notices EOF
  // within one poll interval and fires the job's token; the cooperative
  // cancel then lands far sooner than the 10 s deadline.
  const auto t0 = Clock::now();
  const auto give_up = t0 + milliseconds(5000);
  while (harness.daemon().stats().disconnect_cancelled == 0 &&
         Clock::now() < give_up) {
    std::this_thread::sleep_for(milliseconds(10));
  }
  const auto latency =
      std::chrono::duration_cast<milliseconds>(Clock::now() - t0);
  EXPECT_EQ(harness.daemon().stats().disconnect_cancelled, 1u);
  EXPECT_LT(latency.count(), 5000) << "cancel took the full deadline";
  EXPECT_EQ(harness.stop(), 0);
}

TEST(ServeRobustness, ShutdownFrameDrainsGracefully) {
  TempDir dir;
  ASSERT_FALSE(dir.path().empty());
  DaemonHarness harness(test_options(dir.path() + "/serve.sock"));
  ASSERT_TRUE(harness.start());

  Client client(dir.path() + "/serve.sock");
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_line(submit_frame("last", kFig1Spec, 5000)));
  ASSERT_TRUE(
      client.read_until("accepted", milliseconds(2000)).has_value());
  ASSERT_TRUE(client.send_line("{\"op\": \"shutdown\", \"id\": \"bye\"}"));
  const std::optional<JsonValue> ack =
      client.read_until("shutdown", milliseconds(2000));
  ASSERT_TRUE(ack.has_value());
  const JsonValue* draining = ack->find("draining");
  ASSERT_NE(draining, nullptr);
  EXPECT_TRUE(draining->boolean);

  // Drain lets the admitted job finish and deliver before the hangup.
  const std::optional<JsonValue> result =
      client.read_until("result", milliseconds(10000));
  ASSERT_TRUE(result.has_value());
  EXPECT_STREQ(field_string(*result, "id"), "last");
  EXPECT_EQ(harness.stop(), 0);

  // Submits during drain would have been shed; after exit, nothing new.
  EXPECT_EQ(harness.daemon().stats().completed, 1u);
}

TEST(ServeRobustness, SigtermBeginsGracefulDrainWithFinalHeartbeat) {
  TempDir dir;
  ASSERT_FALSE(dir.path().empty());
  ServeOptions options = test_options(dir.path() + "/serve.sock");
  options.metrics_path = dir.path() + "/metrics.jsonl";
  options.heartbeat_interval = milliseconds(20);
  DaemonHarness harness(std::move(options));
  ASSERT_TRUE(harness.start());

  Client client(dir.path() + "/serve.sock");
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_line(submit_frame("hb", kFig1Spec, 5000)));
  ASSERT_TRUE(
      client.read_until("result", milliseconds(10000)).has_value());

  // The real signal path: raise(SIGTERM) lands in the daemon's self-pipe
  // handler (serve/signals.hpp) and begins the drain — same as `kill`.
  ASSERT_EQ(std::raise(SIGTERM), 0);
  const auto give_up = Clock::now() + milliseconds(10000);
  int rc = -1;
  std::thread joiner([&] { rc = harness.stop(); });
  joiner.join();
  ASSERT_LT(Clock::now(), give_up) << "drain overran its deadline";
  EXPECT_EQ(rc, 0);

  // The metrics stream must validate — v1 job records interleaved with
  // v2 heartbeats — and end with the final flush's heartbeat.
  std::ifstream in(dir.path() + "/metrics.jsonl");
  ASSERT_TRUE(in.good());
  MetricsValidator validator;
  validator.begin_stream();
  std::string line;
  std::string last;
  std::uint64_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    EXPECT_TRUE(validator.check_line(
        line, "metrics.jsonl:" + std::to_string(++lines)))
        << (validator.errors().empty() ? "" : validator.errors().back());
    last = line;
  }
  EXPECT_GE(validator.records() - validator.heartbeats(), 1u);
  EXPECT_GE(validator.heartbeats(), 1u);
  EXPECT_NE(last.find("rmrls-metrics-v2"), std::string::npos)
      << "final flush did not end with a heartbeat: " << last;
}

TEST(ServeProtocol, WatchStreamsValidHeartbeats) {
  TempDir dir;
  ASSERT_FALSE(dir.path().empty());
  ServeOptions options = test_options(dir.path() + "/serve.sock");
  options.heartbeat_interval = milliseconds(20);
  DaemonHarness harness(std::move(options));
  ASSERT_TRUE(harness.start());

  Client client(dir.path() + "/serve.sock");
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_line("{\"op\": \"watch\", \"id\": \"w\"}"));
  ASSERT_TRUE(client.read_until("watch", milliseconds(2000)).has_value());

  // Heartbeats arrive on the session socket in the same rmrls-metrics-v2
  // schema the file sink uses (validated end to end in the SIGTERM test).
  for (int i = 0; i < 3; ++i) {
    const std::optional<JsonValue> hb =
        client.read_until("heartbeat", milliseconds(2000));
    ASSERT_TRUE(hb.has_value()) << "heartbeat " << i << " never arrived";
  }
  EXPECT_EQ(harness.stop(), 0);
}

// The acceptance soak (ISSUE: robustness): >= 8 concurrent clients mixing
// healthy, slow, disconnecting, and malformed behaviour against a small
// worker pool and queue. Every shed request must come back kUnavailable,
// every orphaned job must be cancelled, and the final SIGTERM-equivalent
// drain must complete within its deadline. tsan/asan run this via the
// concurrency/sanitize labels.
TEST(ServeSoak, ConcurrentMixedClients) {
  TempDir dir;
  ASSERT_FALSE(dir.path().empty());
  ServeOptions options = test_options(dir.path() + "/serve.sock");
  options.workers = 2;
  options.queue_cap = 2;
  options.heartbeat_interval = milliseconds(50);
  options.metrics_path = dir.path() + "/metrics.jsonl";
  DaemonHarness harness(std::move(options));
  ASSERT_TRUE(harness.start());
  const std::string sock = dir.path() + "/serve.sock";
  const std::string hard = hard_spec_text();

  std::atomic<int> results{0};
  std::atomic<int> shed{0};          // healthy clients' shed submits
  std::atomic<int> orphan_shed{0};   // disconnectors' shed submits
  std::atomic<int> errors{0};
  std::atomic<int> protocol_failures{0};

  // 4 healthy clients: fig1 with a generous deadline; count outcomes.
  auto healthy = [&](int seq) {
    Client c(sock);
    if (!c.connected()) return void(++protocol_failures);
    if (!c.send_line(submit_frame("h" + std::to_string(seq), kFig1Spec,
                                  3000)))
      return void(++protocol_failures);
    for (;;) {
      std::optional<JsonValue> v = c.read_frame(milliseconds(15000));
      if (!v) return void(++protocol_failures);
      const std::string record = field_string(*v, "record");
      if (record == "result") return void(++results);
      if (record == "error") {
        // Shed under pressure is a legal outcome — but only with the
        // retryable status and exit code.
        if (std::string(field_string(*v, "status")) == "unavailable" &&
            field_number(*v, "exit_code") == 7) {
          ++shed;
        } else {
          ++errors;
        }
        return;
      }
    }
  };
  // 2 disconnectors: hard job, wait for the ack, hang up mid-flight.
  auto disconnector = [&](int seq) {
    Client c(sock);
    if (!c.connected()) return void(++protocol_failures);
    if (!c.send_line(submit_frame("d" + std::to_string(seq), hard, 8000)))
      return void(++protocol_failures);
    std::optional<JsonValue> v = c.read_frame(milliseconds(5000));
    if (!v) return void(++protocol_failures);
    const std::string record = field_string(*v, "record");
    if (record == "error") {
      if (std::string(field_string(*v, "status")) == "unavailable")
        ++orphan_shed;
      else
        ++errors;
    }
    // accepted (or shed) — either way, hang up without reading more.
  };
  // 1 malformed client: garbage frames, then a clean ping.
  auto malformed = [&] {
    Client c(sock);
    if (!c.connected()) return void(++protocol_failures);
    c.send_line("{{{{ not json");
    c.send_line("{\"op\": \"nonsense\"}");
    c.send_line("{\"op\": \"ping\", \"id\": \"mal\"}");
    if (!c.read_until("pong", milliseconds(5000)).has_value())
      ++protocol_failures;
  };
  // 1 slow-loris client: a valid ping trickled byte by byte.
  auto slow = [&] {
    Client c(sock);
    if (!c.connected()) return void(++protocol_failures);
    const std::string frame = "{\"op\": \"ping\", \"id\": \"slow\"}\n";
    for (char ch : frame) {
      if (!c.send_raw(std::string(1, ch))) return void(++protocol_failures);
      std::this_thread::sleep_for(milliseconds(5));
    }
    if (!c.read_until("pong", milliseconds(5000)).has_value())
      ++protocol_failures;
  };

  std::vector<std::thread> clients;
  for (int i = 0; i < 4; ++i) clients.emplace_back(healthy, i);
  for (int i = 0; i < 2; ++i) clients.emplace_back(disconnector, i);
  clients.emplace_back(malformed);
  clients.emplace_back(slow);
  ASSERT_GE(clients.size(), 8u);
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(protocol_failures.load(), 0);
  EXPECT_EQ(errors.load(), 0) << "non-shed error frames under load";
  EXPECT_EQ(results.load() + shed.load(), 4)
      << "healthy submits must all resolve to a result or a shed";

  // Drain under load: the two orphaned hard jobs (if admitted) must be
  // cancelled — by disconnect or by the drain deadline — and the drain
  // itself must beat drain_deadline + slack.
  const auto t0 = Clock::now();
  EXPECT_EQ(harness.stop(), 0);
  const auto drained =
      std::chrono::duration_cast<milliseconds>(Clock::now() - t0);
  EXPECT_LT(drained.count(), 8000) << "drain overran";

  const ServeStats stats = harness.daemon().stats();
  EXPECT_GE(stats.connections, 8u);
  EXPECT_EQ(stats.shed,
            static_cast<std::uint64_t>(shed.load() + orphan_shed.load()));
  EXPECT_EQ(stats.completed + stats.failed, stats.submitted)
      << "every admitted job must resolve before exit";

  // The metrics file survived concurrent completion traffic intact.
  std::ifstream in(dir.path() + "/metrics.jsonl");
  ASSERT_TRUE(in.good());
  MetricsValidator validator;
  validator.begin_stream();
  std::string line;
  std::uint64_t n = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    EXPECT_TRUE(
        validator.check_line(line, "soak:" + std::to_string(++n)))
        << (validator.errors().empty() ? "" : validator.errors().back());
  }
  // records() counts every line (v1 jobs + v2 heartbeats).
  EXPECT_EQ(validator.records() - validator.heartbeats(),
            stats.completed + stats.failed + stats.shed)
      << "one v1 record per resolved or shed job";
}

}  // namespace
}  // namespace rmrls
