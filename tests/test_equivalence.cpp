// Tests for the PPRM-based exact equivalence checker.

#include "rev/equivalence.hpp"

#include <gtest/gtest.h>

#include <random>

#include "rev/random.hpp"
#include "rev/structural.hpp"
#include "templates/fredkinize.hpp"
#include "templates/simplify.hpp"

namespace rmrls {
namespace {

TEST(Equivalence, IdenticalCircuitsAreEquivalent) {
  std::mt19937_64 rng(71);
  const Circuit c = random_circuit(5, 15, GateLibrary::kGT, rng);
  EXPECT_TRUE(equivalent(c, c));
}

TEST(Equivalence, GatePairInsertionPreservesEquivalence) {
  std::mt19937_64 rng(72);
  const Circuit c = random_circuit(4, 10, GateLibrary::kGT, rng);
  Circuit padded = c;
  const Gate g(cube_of_var(0) | cube_of_var(2), 1);
  padded.append(g);
  padded.append(g);
  EXPECT_TRUE(equivalent(c, padded));
}

TEST(Equivalence, DetectsSingleGateDifference) {
  std::mt19937_64 rng(73);
  const Circuit c = random_circuit(4, 10, GateLibrary::kGT, rng);
  Circuit tweaked = c;
  tweaked.append(Gate(kConstOne, 2));
  EXPECT_FALSE(equivalent(c, tweaked));
}

TEST(Equivalence, WidthMismatchThrows) {
  EXPECT_THROW(equivalent(Circuit(3), Circuit(4)), std::invalid_argument);
  EXPECT_THROW(equivalent(Circuit(3), Pprm::identity(4)),
               std::invalid_argument);
}

TEST(Equivalence, AgainstPprmSpec) {
  // The shifter's reference circuit realizes exactly the structural PPRM.
  EXPECT_TRUE(equivalent(shifter_reference_circuit(6), shifter_pprm(6)));
  Circuit broken = shifter_reference_circuit(6);
  broken.append(Gate(kConstOne, 0));
  EXPECT_FALSE(equivalent(broken, shifter_pprm(6)));
}

TEST(Equivalence, WorksAtThirtyLines) {
  // Exact check where truth tables cannot exist.
  const Circuit ref = shifter_reference_circuit(28);
  EXPECT_TRUE(equivalent(ref, shifter_pprm(28)));
  Circuit reordered = ref;  // commuting +1/+2 chains: still equivalent
  EXPECT_TRUE(equivalent(reordered, ref));
}

TEST(Equivalence, TemplatePassesArePprmExact) {
  std::mt19937_64 rng(74);
  for (int trial = 0; trial < 10; ++trial) {
    Circuit c = random_circuit(5, 20, GateLibrary::kNCT, rng);
    c.append(c.gates()[3]);  // guarantee a duplicate to remove
    EXPECT_TRUE(equivalent(simplify_templates(c).circuit, c));
    EXPECT_TRUE(equivalent(fredkinize(c).circuit, c));
  }
}

}  // namespace
}  // namespace rmrls
