// Tests for Toffoli gates and cascades.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "rev/circuit.hpp"
#include "rev/pprm.hpp"
#include "rev/pprm_transform.hpp"
#include "rev/random.hpp"

namespace rmrls {
namespace {

TEST(Gate, NotGate) {
  const Gate g(kConstOne, 0);
  EXPECT_EQ(g.size(), 1);
  EXPECT_EQ(g.apply(0b000), 0b001u);
  EXPECT_EQ(g.apply(0b001), 0b000u);
}

TEST(Gate, CnotGate) {
  const Gate g(cube_of_var(0), 1);  // control a, target b
  EXPECT_EQ(g.size(), 2);
  EXPECT_EQ(g.apply(0b01), 0b11u);
  EXPECT_EQ(g.apply(0b00), 0b00u);
  EXPECT_EQ(g.apply(0b10), 0b10u);
}

TEST(Gate, ToffoliSemanticsMatchEq1) {
  // y_n = x_n XOR x_1 x_2 ... x_{n-1}; controls pass through.
  const Gate g(cube_of_var(0) | cube_of_var(1), 2);
  for (std::uint64_t x = 0; x < 8; ++x) {
    const std::uint64_t y = g.apply(x);
    EXPECT_EQ(y & 0b011, x & 0b011);
    const std::uint64_t expected_t =
        ((x >> 2) & 1) ^ ((x & 1) & ((x >> 1) & 1));
    EXPECT_EQ((y >> 2) & 1, expected_t);
  }
}

TEST(Gate, RejectsTargetInControls) {
  EXPECT_THROW(Gate(cube_of_var(1), 1), std::invalid_argument);
  EXPECT_THROW(Gate(kConstOne, -1), std::invalid_argument);
  EXPECT_THROW(Gate(kConstOne, kMaxVariables), std::invalid_argument);
}

TEST(Gate, IsSelfInverse) {
  const Gate g(cube_of_var(0) | cube_of_var(2), 1);
  for (std::uint64_t x = 0; x < 8; ++x) EXPECT_EQ(g.apply(g.apply(x)), x);
}

TEST(Gate, MovingRule) {
  const Gate g1(cube_of_var(0), 1);  // a -> b
  const Gate g2(cube_of_var(0), 2);  // a -> c: disjoint targets, shared ctrl
  EXPECT_TRUE(g1.commutes_with(g2));
  const Gate g3(cube_of_var(1), 2);  // b -> c: target of g1 feeds control
  EXPECT_FALSE(g1.commutes_with(g3));
  const Gate g4(cube_of_var(2), 1);  // same target as g1
  EXPECT_TRUE(g1.commutes_with(g4));
}

TEST(Gate, CommutationIsSemanticallyCorrect) {
  std::mt19937_64 rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    const Circuit c = random_circuit(4, 2, GateLibrary::kGT, rng);
    const Gate& g1 = c.gates()[0];
    const Gate& g2 = c.gates()[1];
    if (!g1.commutes_with(g2)) continue;
    for (std::uint64_t x = 0; x < 16; ++x) {
      EXPECT_EQ(g2.apply(g1.apply(x)), g1.apply(g2.apply(x)));
    }
  }
}

TEST(GateToString, PaperNotation) {
  EXPECT_EQ(gate_to_string(Gate(kConstOne, 0), 3), "TOF1(a)");
  EXPECT_EQ(gate_to_string(Gate(cube_of_var(2), 0), 3), "TOF2(c; a)");
  EXPECT_EQ(gate_to_string(Gate(cube_of_var(0) | cube_of_var(2), 1), 3),
            "TOF3(a, c; b)");
}

TEST(Circuit, SimulateAppliesGatesLeftToRight) {
  // Fig. 3(d): TOF1(a) TOF3(a, c; b)... the first gate acts first.
  Circuit c(2);
  c.append(Gate(kConstOne, 0));      // NOT a
  c.append(Gate(cube_of_var(0), 1));  // CNOT a -> b
  EXPECT_EQ(c.simulate(0b00), 0b11u);  // NOT sets a, CNOT then fires
}

TEST(Circuit, AppendRejectsOutOfRangeGate) {
  Circuit c(2);
  EXPECT_THROW(c.append(Gate(kConstOne, 2)), std::invalid_argument);
  EXPECT_THROW(c.append(Gate(cube_of_var(3), 0)), std::invalid_argument);
}

TEST(Circuit, PaperFig3dRealizesFig1) {
  // TOF1(a), then b <- b XOR ac, then c <- c XOR ab realizes
  // {1, 0, 7, 2, 3, 4, 5, 6}; validated by simulation.
  Circuit c(3);
  c.append(Gate(kConstOne, 0));
  c.append(Gate(cube_of_var(0) | cube_of_var(2), 1));
  c.append(Gate(cube_of_var(0) | cube_of_var(1), 2));
  EXPECT_EQ(c.to_truth_table(), TruthTable({1, 0, 7, 2, 3, 4, 5, 6}));
}

TEST(Circuit, InverseReversesFunction) {
  std::mt19937_64 rng(11);
  const Circuit c = random_circuit(4, 10, GateLibrary::kGT, rng);
  const Circuit inv = c.inverse();
  for (std::uint64_t x = 0; x < 16; ++x) {
    EXPECT_EQ(inv.simulate(c.simulate(x)), x);
  }
}

TEST(Circuit, ThenConcatenates) {
  std::mt19937_64 rng(12);
  const Circuit c1 = random_circuit(3, 4, GateLibrary::kNCT, rng);
  const Circuit c2 = random_circuit(3, 4, GateLibrary::kNCT, rng);
  const Circuit cat = c1.then(c2);
  EXPECT_EQ(cat.gate_count(), 8);
  for (std::uint64_t x = 0; x < 8; ++x) {
    EXPECT_EQ(cat.simulate(x), c2.simulate(c1.simulate(x)));
  }
}

TEST(Circuit, ToPprmMatchesTruthTable) {
  std::mt19937_64 rng(13);
  for (int n = 2; n <= 6; ++n) {
    const Circuit c = random_circuit(n, 12, GateLibrary::kGT, rng);
    EXPECT_EQ(c.to_pprm(), pprm_of_truth_table(c.to_truth_table()))
        << "width " << n;
  }
}

TEST(Circuit, ToPprmWorksBeyondTableReach) {
  // 30 lines: no truth table possible; checked by sampled evaluation.
  std::mt19937_64 rng(14);
  const Circuit c = random_circuit(30, 8, GateLibrary::kGT, rng);
  const Pprm p = c.to_pprm();
  for (int i = 0; i < 256; ++i) {
    const std::uint64_t x = rng() & ((std::uint64_t{1} << 30) - 1);
    EXPECT_EQ(p.eval(x), c.simulate(x));
  }
}

TEST(Circuit, MaxGateSize) {
  Circuit c(4);
  EXPECT_EQ(c.max_gate_size(), 0);
  c.append(Gate(kConstOne, 0));
  c.append(Gate(cube_of_var(1) | cube_of_var(2) | cube_of_var(3), 0));
  EXPECT_EQ(c.max_gate_size(), 4);
}

TEST(Circuit, RelabelWiresRenamesControlsAndTargets) {
  // TOF3(a, c; b) with a->c, b->a, c->b becomes TOF3(c, b; a).
  Circuit c(3);
  c.append(Gate(cube_of_var(0) | cube_of_var(2), 1));
  const Circuit relabeled = c.relabel_wires({2, 0, 1});
  EXPECT_EQ(relabeled.to_string(), "TOF3(b, c; a)");
}

TEST(Circuit, RelabelWiresRealizesConjugatedFunction) {
  // Relabeling by sigma realizes P_sigma o f o P_sigma^-1: the simulation
  // of the relabeled cascade commutes with the bit permutation.
  std::mt19937_64 rng(15);
  for (int n = 2; n <= 6; ++n) {
    const Circuit c = random_circuit(n, 10, GateLibrary::kGT, rng);
    std::vector<int> sigma(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) sigma[static_cast<std::size_t>(i)] = i;
    std::shuffle(sigma.begin(), sigma.end(), rng);
    const auto permute = [&](std::uint64_t x) {
      std::uint64_t y = 0;
      for (int i = 0; i < n; ++i) {
        y |= ((x >> i) & 1u) << sigma[static_cast<std::size_t>(i)];
      }
      return y;
    };
    const Circuit relabeled = c.relabel_wires(sigma);
    for (std::uint64_t x = 0; x < (std::uint64_t{1} << n); ++x) {
      EXPECT_EQ(relabeled.simulate(permute(x)), permute(c.simulate(x)));
    }
  }
}

TEST(Circuit, RelabelWiresIdentityAndInverseCompose) {
  std::mt19937_64 rng(16);
  const Circuit c = random_circuit(4, 8, GateLibrary::kGT, rng);
  EXPECT_EQ(c.relabel_wires({0, 1, 2, 3}), c);
  // Applying sigma then sigma^-1 restores the cascade gate for gate.
  const std::vector<int> sigma = {2, 3, 1, 0};
  const std::vector<int> inverse = {3, 2, 0, 1};
  EXPECT_EQ(c.relabel_wires(sigma).relabel_wires(inverse), c);
}

TEST(Circuit, RelabelWiresRejectsNonPermutations) {
  const Circuit c(3);
  EXPECT_THROW((void)c.relabel_wires({0, 1}), std::invalid_argument);
  EXPECT_THROW((void)c.relabel_wires({0, 1, 1}), std::invalid_argument);
  EXPECT_THROW((void)c.relabel_wires({0, 1, 3}), std::invalid_argument);
  EXPECT_THROW((void)c.relabel_wires({0, 1, -1}), std::invalid_argument);
}

TEST(Circuit, ToStringMatchesPaperStyle) {
  Circuit c(3);
  c.append(Gate(cube_of_var(0) | cube_of_var(2), 1));
  c.append(Gate(kConstOne, 0));
  EXPECT_EQ(c.to_string(), "TOF3(a, c; b) TOF1(a)");
  EXPECT_EQ(Circuit(3).to_string(), "(empty)");
}

}  // namespace
}  // namespace rmrls
