// Tests for the benchmark registry: every named function of Section V.

#include <gtest/gtest.h>

#include <bit>

#include "bench_suite/functions.hpp"
#include "bench_suite/registry.hpp"
#include "rev/pprm_transform.hpp"
#include "rev/structural.hpp"

namespace rmrls {
namespace {

TEST(BenchSuite, AllNamesResolveAndValidate) {
  for (const std::string& name : suite::benchmark_names()) {
    const suite::Benchmark b = suite::get_benchmark(name);
    EXPECT_EQ(b.info.name, name);
    EXPECT_EQ(b.pprm.num_vars(), b.info.lines) << name;
    EXPECT_EQ(b.info.real_inputs + b.info.garbage_inputs, b.info.lines)
        << name;
    if (b.table) {
      EXPECT_EQ(b.table->num_vars(), b.info.lines) << name;
      EXPECT_EQ(pprm_of_truth_table(*b.table), b.pprm) << name;
    }
  }
}

TEST(BenchSuite, UnknownNameThrows) {
  EXPECT_THROW(suite::get_benchmark("nope"), std::invalid_argument);
}

TEST(BenchSuite, TableIVRowCountAndOrder) {
  const auto names = suite::benchmark_names();
  EXPECT_EQ(names.size(), 29u);
  EXPECT_EQ(names.front(), "2of5");
  EXPECT_EQ(names.back(), "mod64adder");
}

TEST(BenchSuite, PaperReferenceNumbersArePresent) {
  const suite::Benchmark rd53 = suite::get_benchmark("rd53");
  EXPECT_EQ(rd53.info.paper_gates, 13);
  EXPECT_EQ(rd53.info.paper_cost, 116);
  EXPECT_EQ(rd53.info.best_gates, 16);
  EXPECT_EQ(rd53.info.best_cost, 75);
  const suite::Benchmark alu = suite::get_benchmark("alu");
  EXPECT_FALSE(alu.info.best_gates.has_value());
}

TEST(Functions, Fig1IsThePaperSpec) {
  EXPECT_EQ(suite::fig1().to_string(), "{1, 0, 7, 2, 3, 4, 5, 6}");
}

TEST(Functions, ExamplesMatchPrintedSpecs) {
  EXPECT_EQ(suite::example(2).apply(0), 7u);  // shift right wraps 0 -> 7
  EXPECT_EQ(suite::example(3), TruthTable({0, 1, 2, 3, 4, 6, 5, 7}));
  EXPECT_EQ(suite::example(8).apply(1), 7u);  // adder row 1
  EXPECT_THROW(suite::example(9), std::invalid_argument);
  EXPECT_THROW(suite::example(0), std::invalid_argument);
}

TEST(Functions, Rd53CountsOnes) {
  // rd53 (recovered from the paper's printed cascade) encodes the number
  // of ones of the five inputs on lines e, f, g (e = least significant)
  // whenever the two constant lines are 0.
  const TruthTable t = suite::rd53();
  for (std::uint64_t x = 0; x < 32; ++x) {
    const auto ones = static_cast<std::uint64_t>(std::popcount(x));
    EXPECT_EQ(t.apply(x) >> 4, ones) << "x=" << x;
  }
}

TEST(Functions, Rd32CountsOnes) {
  const TruthTable t = suite::rd32();
  for (std::uint64_t x = 0; x < 8; ++x) {
    EXPECT_EQ(t.apply(x) & 0b11, static_cast<std::uint64_t>(std::popcount(x)));
  }
}

TEST(Functions, Xor5ComputesParity) {
  const TruthTable t = suite::xor5();
  for (std::uint64_t x = 0; x < 32; ++x) {
    EXPECT_EQ(t.apply(x) & 1, static_cast<std::uint64_t>(std::popcount(x) & 1));
    EXPECT_EQ(t.apply(x) >> 1, x >> 1);  // other lines pass through
  }
}

TEST(Functions, Mod5CheckFlagsMultiplesOfFive) {
  const TruthTable t = suite::mod5_check(4);
  for (std::uint64_t x = 0; x < 32; ++x) {
    const std::uint64_t v = x & 0xf;
    const std::uint64_t flag_in = x >> 4;
    const std::uint64_t flag_out = t.apply(x) >> 4;
    EXPECT_EQ(flag_out, flag_in ^ (v % 5 == 0 ? 1u : 0u));
  }
}

TEST(Functions, HammingDecodersAreInvolutiveOnCodewords) {
  // A clean codeword has syndrome 0 and decodes to its data bits.
  const TruthTable h7 = suite::ham7();
  // Build codewords by inverting the decode map: y with syndrome 0.
  for (std::uint64_t y = 0; y < 16; ++y) {
    const std::uint64_t x = h7.inverse().apply(y);  // codeword for data y
    EXPECT_EQ(h7.apply(x), y);
    // Flipping any bit of the codeword must still decode to data y.
    for (int bit = 0; bit < 7; ++bit) {
      const std::uint64_t corrupted = x ^ (std::uint64_t{1} << bit);
      EXPECT_EQ(h7.apply(corrupted) & 0xf, y) << "bit " << bit;
    }
  }
}

TEST(Functions, Ham3CorrectsSingleBitErrors) {
  const TruthTable h3 = suite::ham3();
  EXPECT_EQ(h3.apply(0b000) & 1, 0u);
  EXPECT_EQ(h3.apply(0b111) & 1, 1u);
  // One flip away from a codeword still yields the codeword's data bit.
  for (std::uint64_t code : {0b000u, 0b111u}) {
    for (int bit = 0; bit < 3; ++bit) {
      EXPECT_EQ(h3.apply(code ^ (1u << bit)) & 1, code & 1);
    }
  }
}

TEST(Functions, HwbRotatesByWeight) {
  const TruthTable t = suite::hwb(4);
  EXPECT_EQ(t.apply(0b0000), 0b0000u);
  EXPECT_EQ(t.apply(0b1111), 0b1111u);
  EXPECT_EQ(t.apply(0b0001), 0b0010u);  // weight 1: rotate left by 1
  EXPECT_EQ(t.apply(0b0011), 0b1100u);  // weight 2
}

TEST(Functions, ParityFamilies) {
  const TruthTable odd = suite::six_one135();
  const TruthTable even = suite::six_one0246();
  for (std::uint64_t x = 0; x < 64; ++x) {
    EXPECT_EQ(odd.apply(x) & 1, static_cast<std::uint64_t>(std::popcount(x) & 1));
    EXPECT_EQ(even.apply(x) & 1,
              static_cast<std::uint64_t>((std::popcount(x) & 1) ^ 1));
  }
}

TEST(Functions, MajorityEmbeddingsRestrictCorrectly) {
  const TruthTable m3 = suite::majority3();
  for (std::uint64_t x = 0; x < 8; ++x) {
    EXPECT_EQ(m3.apply(x) & 1,
              static_cast<std::uint64_t>(std::popcount(x) >= 2));
  }
  // majority5 uses the paper's printed permutation; spot-check a row the
  // table lists: input 7 (three ones) -> 27.
  EXPECT_EQ(suite::majority5().apply(7), 27u);
}

TEST(Functions, ModAdderArithmetic) {
  const TruthTable add5 = suite::mod_adder(3, 5);
  for (std::uint64_t a = 0; a < 5; ++a) {
    for (std::uint64_t b = 0; b < 5; ++b) {
      const std::uint64_t y = add5.apply(a | (b << 3));
      EXPECT_EQ(y & 7, a);
      EXPECT_EQ(y >> 3, (a + b) % 5);
    }
  }
  // Out-of-domain rows are identity.
  EXPECT_EQ(add5.apply(6 | (7u << 3)), 6 | (7u << 3));
  EXPECT_THROW(suite::mod_adder(3, 9), std::invalid_argument);
}

TEST(BenchSuite, StructuralEntriesMatchTheirGenerators) {
  EXPECT_EQ(suite::get_benchmark("graycode20").pprm, graycode_pprm(20));
  EXPECT_EQ(suite::get_benchmark("shift28").pprm, shifter_pprm(28));
  // shift10 exposes both forms; they must agree.
  const suite::Benchmark s10 = suite::get_benchmark("shift10");
  ASSERT_TRUE(s10.table.has_value());
  EXPECT_EQ(pprm_of_truth_table(*s10.table), s10.pprm);
}

TEST(Functions, SymmetricPredicates) {
  const TruthTable s = suite::sym(6, 2, 4);
  for (std::uint64_t x = 0; x < 64; ++x) {
    const int ones = std::popcount(x);
    EXPECT_EQ(s.apply(x) & 1,
              static_cast<std::uint64_t>(ones >= 2 && ones <= 4));
  }
  EXPECT_THROW(suite::sym(6, 4, 2), std::invalid_argument);
  EXPECT_THROW(suite::sym(1, 0, 1), std::invalid_argument);
}

TEST(Functions, Decod24OneHotRows) {
  // Example 11: a 2:4 decoder on the zero-constant rows.
  const TruthTable t = suite::decod24();
  EXPECT_EQ(t.apply(0), 1u);
  EXPECT_EQ(t.apply(1), 2u);
  EXPECT_EQ(t.apply(2), 4u);
  EXPECT_EQ(t.apply(3), 8u);
}

}  // namespace
}  // namespace rmrls
