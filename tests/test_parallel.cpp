// Tests for the parallel search engine (core/parallel.hpp): result
// validity and quality vs the sequential engine, worker/shard metrics,
// the shared node budget, and a contention stress test for the sharded
// transposition table. Runs under TSan via the `tsan` CMake preset
// (ctest -L concurrency).

#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "core/synthesizer.hpp"
#include "rev/pprm_transform.hpp"
#include "rev/random.hpp"

namespace rmrls {
namespace {

SynthesisOptions quick(int threads = 1) {
  SynthesisOptions o;
  o.max_nodes = 50000;
  o.num_threads = threads;
  // The suite exercises the multi-worker code paths even on small CI
  // hosts, so the hardware-concurrency clamp is lifted here.
  o.allow_oversubscription = true;
  return o;
}

// Tier-1 3-variable suite: Fig. 1 plus the Section V-C examples. The
// parallel engine must synthesize every one, and — sharing the sequential
// engine's pruning rules while searching strictly more of the space per
// bound — never with more gates.
const std::vector<std::vector<std::uint64_t>>& tier1_specs() {
  static const std::vector<std::vector<std::uint64_t>> specs = {
      {1, 0, 7, 2, 3, 4, 5, 6},
      {1, 0, 3, 2, 5, 7, 4, 6},
      {7, 0, 1, 2, 3, 4, 5, 6},
      {0, 1, 2, 3, 4, 6, 5, 7},
      {0, 1, 2, 4, 3, 5, 6, 7},
      {1, 2, 3, 4, 5, 6, 7, 0},
  };
  return specs;
}

TEST(Parallel, MatchesSequentialQualityOnTier1) {
  for (const auto& perm : tier1_specs()) {
    const TruthTable spec(perm);
    const SynthesisResult seq = synthesize(spec, quick(1));
    const SynthesisResult par = synthesize(spec, quick(4));
    ASSERT_TRUE(seq.success);
    ASSERT_TRUE(par.success);
    EXPECT_TRUE(implements(par.circuit, spec));
    EXPECT_LE(par.circuit.gate_count(), seq.circuit.gate_count());
  }
}

TEST(Parallel, SingleThreadIsDeterministic) {
  const TruthTable spec({0, 7, 6, 9, 4, 11, 10, 13, 8, 15, 14, 1, 12, 3, 2, 5});
  const SynthesisResult a = synthesize(spec, quick(1));
  const SynthesisResult b = synthesize(spec, quick(1));
  ASSERT_TRUE(a.success);
  ASSERT_TRUE(b.success);
  EXPECT_EQ(a.circuit.to_string(), b.circuit.to_string());
  EXPECT_EQ(a.stats.nodes_expanded, b.stats.nodes_expanded);
  EXPECT_EQ(a.stats.children_created, b.stats.children_created);
  EXPECT_EQ(a.stats.workers, 1u);
  EXPECT_TRUE(a.stats.tt_shard_hits.empty());
}

TEST(Parallel, IdentityAndSingleGateEarlyOuts) {
  const SynthesisResult id = synthesize(TruthTable::identity(3), quick(4));
  ASSERT_TRUE(id.success);
  EXPECT_EQ(id.circuit.gate_count(), 0);
  EXPECT_EQ(id.termination, TerminationReason::kSolved);

  const TruthTable not_gate({1, 0});
  const SynthesisResult r = synthesize(not_gate, quick(4));
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.circuit.gate_count(), 1);
  EXPECT_TRUE(implements(r.circuit, not_gate));
}

TEST(Parallel, ReportsWorkersAndShardHits) {
  SynthesisOptions o = quick(4);
  o.tt_shards = 8;
  const TruthTable spec({1, 0, 7, 2, 3, 4, 5, 6});
  const SynthesisResult r = synthesize(spec, o);
  ASSERT_TRUE(r.success);
  EXPECT_GE(r.stats.workers, 2u);  // never more workers than root seeds
  EXPECT_LE(r.stats.workers, 4u);
  ASSERT_EQ(r.stats.tt_shard_hits.size(), 8u);
  const std::uint64_t shard_sum =
      std::accumulate(r.stats.tt_shard_hits.begin(),
                      r.stats.tt_shard_hits.end(), std::uint64_t{0});
  // Every shared-table hit was counted pruned_duplicate by some worker
  // (sequential passes of the same synthesis may add more duplicates).
  EXPECT_LE(shard_sum, r.stats.pruned_duplicate);
}

TEST(Parallel, RespectsSharedNodeBudget) {
  SynthesisOptions o;
  o.num_threads = 4;
  o.allow_oversubscription = true;
  o.max_nodes = 500;
  o.iterative_refinement = false;
  std::mt19937_64 rng(11);
  const Pprm spec = pprm_of_truth_table(random_reversible_function(4, rng));
  const SynthesisResult r = synthesize(spec, o);
  EXPECT_LE(r.stats.nodes_expanded, o.max_nodes);
}

TEST(Parallel, StopAtFirstSolutionStopsAllWorkers) {
  SynthesisOptions o = quick(4);
  o.stop_at_first_solution = true;
  std::mt19937_64 rng(12);
  for (int i = 0; i < 3; ++i) {
    const TruthTable spec = random_reversible_function(3, rng);
    const SynthesisResult r = synthesize(spec, o);
    ASSERT_TRUE(r.success);
    EXPECT_TRUE(implements(r.circuit, spec));
    EXPECT_EQ(r.termination, TerminationReason::kSolved);
  }
}

// Contention stress for the sharded transposition table: many workers,
// deliberately few shards (every check_and_insert collides on a lock),
// on 4-variable functions whose state spaces overlap heavily across
// subtrees. TSan (the `tsan` preset) turns any shard race into a failure.
TEST(Parallel, ShardContentionStress) {
  std::mt19937_64 rng(13);
  for (const int shards : {1, 2}) {
    SynthesisOptions o;
    o.num_threads = 8;
    o.allow_oversubscription = true;
    o.tt_shards = shards;
    o.max_nodes = 20000;
    o.iterative_refinement = false;
    const TruthTable spec = random_reversible_function(4, rng);
    const SynthesisResult r = synthesize(spec, o);
    if (r.success) EXPECT_TRUE(implements(r.circuit, spec));
    ASSERT_EQ(r.stats.tt_shard_hits.size(), static_cast<std::size_t>(shards));
  }
}

// Lazy SMP: every worker searches the full root with a diversified
// ordering, and worker 0 always keeps the canonical (sequential) order.
// At 8 threads the engine must therefore match or beat the sequential
// gate count on every tier-1 spec — diversification adds exploration, it
// never trades the canonical order away.
TEST(Parallel, LazySmpMatchesSequentialQualityAtEightThreads) {
  for (const auto& perm : tier1_specs()) {
    const TruthTable spec(perm);
    const SynthesisResult seq = synthesize(spec, quick(1));
    const SynthesisResult par = synthesize(spec, quick(8));
    ASSERT_TRUE(seq.success);
    ASSERT_TRUE(par.success);
    EXPECT_TRUE(implements(par.circuit, spec));
    EXPECT_LE(par.circuit.gate_count(), seq.circuit.gate_count());
  }
}

// Shared-TT stress under eviction pressure: a deliberately tiny table
// (1 MiB, few stripes) forces all eight lazy-SMP workers through
// constant insert/evict/refresh traffic on the same buckets. TSan (the
// `tsan` preset) turns any entry or counter race into a failure; the
// stats invariants check the striped accounting under contention.
TEST(Parallel, SharedTinyTableStress) {
  std::mt19937_64 rng(14);
  for (int i = 0; i < 2; ++i) {
    SynthesisOptions o;
    o.num_threads = 8;
    o.allow_oversubscription = true;
    o.tt_shards = 2;
    o.tt_mb = 1;
    o.max_nodes = 20000;
    o.iterative_refinement = false;
    const TruthTable spec = random_reversible_function(4, rng);
    const SynthesisResult r = synthesize(spec, o);
    if (r.success) EXPECT_TRUE(implements(r.circuit, spec));
    EXPECT_LE(r.stats.tt_evictions, r.stats.tt_inserts);
    ASSERT_EQ(r.stats.tt_shard_hits.size(), 2u);
  }
}

// Parallel runs are not bit-reproducible, but every run must be valid and
// within the sequential engine's refinement quality on easy specs.
TEST(Parallel, RepeatedRunsStayValid) {
  const TruthTable spec({1, 0, 7, 2, 3, 4, 5, 6});
  for (int i = 0; i < 5; ++i) {
    const SynthesisResult r = synthesize(spec, quick(3));
    ASSERT_TRUE(r.success);
    EXPECT_TRUE(implements(r.circuit, spec));
    EXPECT_LE(r.circuit.gate_count(), 3);
  }
}

}  // namespace
}  // namespace rmrls
