// Tests for the fleet scale-out layer (docs/fleet.md): the frozen stable
// spec key, deterministic shard assignment and its exactly-once union
// property, the crash-safe checkpoint ledger and batch resume semantics,
// the cross-process lease protocol and disk GC of the shared store, and —
// through the real CLI binary — SIGKILL-resume with no job synthesized
// twice.

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_suite/corpus.hpp"
#include "core/batch.hpp"
#include "core/checkpoint.hpp"
#include "core/synth_cache.hpp"
#include "obs/json.hpp"
#include "rev/canonical.hpp"
#include "rev/random.hpp"

namespace rmrls {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const char* name) {
  const fs::path dir = fs::path(testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

TruthTable identity(int n) {
  std::vector<std::uint64_t> image(std::size_t{1} << n);
  for (std::size_t i = 0; i < image.size(); ++i) image[i] = i;
  return TruthTable(std::move(image));
}

std::vector<BatchJob> corpus_jobs(int size, double repeat_rate,
                                  std::uint64_t seed) {
  suite::CorpusOptions options;
  options.size = size;
  options.repeat_rate = repeat_rate;
  options.min_vars = 3;
  options.max_vars = 4;
  options.seed = seed;
  Result<std::vector<suite::CorpusEntry>> corpus =
      suite::generate_corpus(options);
  EXPECT_TRUE(corpus.ok());
  std::vector<BatchJob> jobs;
  for (suite::CorpusEntry& e : corpus.value()) {
    jobs.push_back(BatchJob{std::move(e.label), std::move(e.spec), ""});
  }
  return jobs;
}

// ---------------------------------------------------------------------------
// Stable spec key: frozen wire format.

TEST(StableSpecKey, GoldenValueIsFrozen) {
  // FNV-1a over (num_vars byte, 8 LE bytes per image word). This constant
  // is load-bearing: checkpoint files and shard membership persist it, so
  // a hash change silently reshards every fleet. If this test fails, the
  // change is wrong — do not update the constant.
  EXPECT_EQ(stable_spec_key(identity(3)), 0x9034c268bba96492ULL);
}

TEST(StableSpecKey, DistinguishesSpecsButNotInstances) {
  const TruthTable a = identity(3);
  TruthTable b = identity(3);
  EXPECT_EQ(stable_spec_key(a), stable_spec_key(b));
  std::mt19937_64 rng(7);
  for (int i = 0; i < 16; ++i) {
    const TruthTable r = random_reversible_function(3, rng);
    if (r == a) continue;
    EXPECT_NE(stable_spec_key(r), stable_spec_key(a));
  }
}

// ---------------------------------------------------------------------------
// Sharding: exactly-once union, stable ids.

TEST(Sharding, EverySpecOwnedByExactlyOneShard) {
  std::mt19937_64 rng(11);
  for (int n = 1; n <= 8; ++n) {
    for (int s = 0; s < 32; ++s) {
      const TruthTable spec = random_reversible_function(3 + (s & 1), rng);
      int owners = 0;
      for (int i = 0; i < n; ++i) owners += shard_owns(spec, i, n) ? 1 : 0;
      EXPECT_EQ(owners, 1) << "shard_count " << n;
    }
  }
}

TEST(Sharding, SingleShardOwnsEverything) {
  std::mt19937_64 rng(13);
  const TruthTable spec = random_reversible_function(4, rng);
  EXPECT_TRUE(shard_owns(spec, 0, 1));
  EXPECT_TRUE(shard_owns(spec, 0, 0));  // degenerate count behaves as 1
}

TEST(Sharding, FilterUnionCoversCorpusExactlyOnce) {
  std::vector<BatchJob> jobs = corpus_jobs(40, 0.5, 3);
  assign_job_ids(jobs);
  std::multiset<std::string> all;
  for (const BatchJob& j : jobs) {
    ASSERT_FALSE(j.id.empty());
    all.insert(j.id);
  }
  // Duplicate corpus lines get distinct occurrence suffixes, so the 40
  // ids are 40 distinct strings.
  EXPECT_EQ(std::set<std::string>(all.begin(), all.end()).size(),
            all.size());
  for (const int n : {1, 2, 3, 4, 8}) {
    std::multiset<std::string> seen;
    for (int i = 0; i < n; ++i) {
      for (const BatchJob& j : filter_shard(jobs, i, n)) {
        seen.insert(j.id);
      }
    }
    EXPECT_EQ(seen, all) << "shard_count " << n;
  }
}

TEST(Sharding, JobIdsIndependentOfShardCount) {
  // The id is assigned over the full corpus before filtering, so the same
  // (name, id) pairing survives any shard count. Names alone are not
  // unique — the corpus generator legitimately re-emits a family label —
  // so the pairs are compared as multisets.
  std::vector<BatchJob> jobs = corpus_jobs(24, 0.5, 5);
  assign_job_ids(jobs);
  std::multiset<std::string> expected;
  for (const BatchJob& j : jobs) expected.insert(j.name + "\t" + j.id);
  for (const int n : {2, 4, 8}) {
    std::multiset<std::string> seen;
    for (int i = 0; i < n; ++i) {
      for (const BatchJob& j : filter_shard(jobs, i, n)) {
        seen.insert(j.name + "\t" + j.id);
      }
    }
    EXPECT_EQ(seen, expected) << "shard_count " << n;
  }
}

TEST(Sharding, OutOfRangeShardIndexOwnsNothing) {
  std::vector<BatchJob> jobs = corpus_jobs(8, 0.0, 9);
  assign_job_ids(jobs);
  EXPECT_TRUE(filter_shard(jobs, 5, 4).empty());
  EXPECT_TRUE(filter_shard(jobs, -1, 4).empty());
}

// ---------------------------------------------------------------------------
// Checkpoint ledger.

TEST(Checkpoint, MissingFileIsEmptyAndRoundTrips) {
  const fs::path dir = fresh_dir("ck_roundtrip");
  const std::string path = (dir / "ck").string();
  Result<BatchCheckpoint> first = BatchCheckpoint::open(path);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().completed_count(), 0u);
  first.value().mark("00000000000000aa.0");
  first.value().mark("00000000000000aa.1");
  first.value().mark("00000000000000aa.1");  // idempotent
  EXPECT_TRUE(first.value().flush());

  Result<BatchCheckpoint> second = BatchCheckpoint::open(path);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().completed_count(), 2u);
  EXPECT_TRUE(second.value().completed("00000000000000aa.0"));
  EXPECT_TRUE(second.value().completed("00000000000000aa.1"));
  EXPECT_FALSE(second.value().completed("00000000000000aa.2"));
  // No torn tmp files left behind by the atomic rewrite.
  for (const auto& entry : fs::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().filename().string(), "ck");
  }
}

TEST(Checkpoint, RejectsForeignHeaderAndGarbledIds) {
  const fs::path dir = fresh_dir("ck_malformed");
  {
    std::ofstream out(dir / "bad_header");
    out << "not a checkpoint\n00000000000000aa.0\n";
  }
  EXPECT_EQ(BatchCheckpoint::open((dir / "bad_header").string())
                .status()
                .code(),
            StatusCode::kParseError);
  {
    std::ofstream out(dir / "bad_id");
    out << "# rmrls-checkpoint-v1\nzz00000000000000.0\n";
  }
  EXPECT_EQ(
      BatchCheckpoint::open((dir / "bad_id").string()).status().code(),
      StatusCode::kParseError);
}

TEST(Checkpoint, BatchSkipsCompletedJobsAndMarksTheRest) {
  const fs::path dir = fresh_dir("ck_batch");
  const std::string path = (dir / "ck").string();
  std::vector<BatchJob> jobs = corpus_jobs(6, 0.0, 21);
  assign_job_ids(jobs);

  Result<BatchCheckpoint> cp = BatchCheckpoint::open(path);
  ASSERT_TRUE(cp.ok());
  cp.value().mark(jobs[1].id);
  cp.value().mark(jobs[4].id);

  BatchOptions options;
  options.resilience.search.max_nodes = 200000;
  options.checkpoint = &cp.value();
  const BatchResult br = run_batch(jobs, options);
  ASSERT_TRUE(br.status.ok());
  EXPECT_EQ(br.stats.skipped, 2u);
  EXPECT_EQ(br.stats.completed, 4u);
  EXPECT_TRUE(br.outcomes[1].skipped);
  EXPECT_TRUE(br.outcomes[4].skipped);
  EXPECT_EQ(br.outcomes[1].result.circuit.gate_count(), 0);
  for (const std::size_t i : {0u, 2u, 3u, 5u}) {
    EXPECT_FALSE(br.outcomes[i].skipped);
    EXPECT_TRUE(br.outcomes[i].status.ok());
  }
  // Every job is now in the ledger; a rerun synthesizes nothing.
  Result<BatchCheckpoint> resumed = BatchCheckpoint::open(path);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed.value().completed_count(), jobs.size());
  BatchOptions rerun = options;
  rerun.checkpoint = &resumed.value();
  const BatchResult again = run_batch(jobs, rerun);
  ASSERT_TRUE(again.status.ok());
  EXPECT_EQ(again.stats.skipped, jobs.size());
  EXPECT_EQ(again.stats.completed, 0u);
  EXPECT_EQ(again.stats.cache_misses, 0u);
}

// ---------------------------------------------------------------------------
// Cross-process lease protocol (two cache instances = two "processes").

SynthCacheOptions dir_options(const fs::path& dir) {
  SynthCacheOptions options;
  options.dir = dir.string();
  return options;
}

TEST(Lease, SecondInstanceWaitsAndAdoptsPublishedCircuit) {
  const fs::path dir = fresh_dir("lease_adopt");
  SynthCacheOptions options = dir_options(dir);
  options.lease_wait = std::chrono::milliseconds(5000);
  SynthCache a(options);
  SynthCache b(options);
  const std::uint64_t key = 0x2a;

  const SynthCache::Acquisition lead = a.acquire(key);
  ASSERT_EQ(lead.outcome, SynthCache::Outcome::kLead);
  EXPECT_TRUE(fs::exists(dir / "000000000000002a.lease"));
  EXPECT_EQ(a.stats().lease_acquired, 1u);

  std::mt19937_64 rng(3);
  const Circuit circuit = random_circuit(4, 4, GateLibrary::kGT, rng);
  SynthCache::Acquisition adopted;
  std::thread waiter([&] { adopted = b.acquire(key); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  a.publish(key, &circuit);
  waiter.join();

  ASSERT_EQ(adopted.outcome, SynthCache::Outcome::kHit);
  ASSERT_TRUE(adopted.circuit.has_value());
  EXPECT_EQ(*adopted.circuit, circuit);
  EXPECT_GE(b.stats().lease_waits, 1u);
  EXPECT_EQ(b.stats().lease_timeouts, 0u);
  // The winner's lease is gone; the store holds exactly the one orbit.
  EXPECT_FALSE(fs::exists(dir / "000000000000002a.lease"));
  EXPECT_TRUE(fs::exists(dir / "000000000000002a.tfc"));
}

TEST(Lease, TimeoutFallsThroughToLeaselessLead) {
  const fs::path dir = fresh_dir("lease_timeout");
  // A lease held by a process that is alive (fresh mtime) but slow: the
  // waiter gives up after lease_wait and synthesizes anyway — duplicate
  // work, never a wedge.
  { std::ofstream(dir / "0000000000000007.lease") << "999999"; }
  SynthCacheOptions options = dir_options(dir);
  options.lease_wait = std::chrono::milliseconds(60);
  SynthCache cache(options);
  const SynthCache::Acquisition acq = cache.acquire(7);
  EXPECT_EQ(acq.outcome, SynthCache::Outcome::kLead);
  EXPECT_EQ(cache.stats().lease_timeouts, 1u);
  cache.publish(7, nullptr);  // release the in-process flight
}

TEST(Lease, StaleLeaseFromDeadProcessIsStolen) {
  const fs::path dir = fresh_dir("lease_stale");
  const fs::path lease = dir / "0000000000000009.lease";
  { std::ofstream(lease) << "999999"; }
  // Backdate the lease far past any plausible staleness threshold.
  fs::last_write_time(lease,
                      fs::last_write_time(lease) - std::chrono::hours(2));
  SynthCacheOptions options = dir_options(dir);
  options.lease_wait = std::chrono::milliseconds(5000);
  options.lease_stale = std::chrono::milliseconds(500);
  // Keep construction-time gc_disk() from sweeping the stale lease first:
  // this test wants the acquire path itself to steal it.
  options.disk_gc_every = 0;
  SynthCache cache(options);
  const SynthCache::Acquisition acq = cache.acquire(9);
  EXPECT_EQ(acq.outcome, SynthCache::Outcome::kLead);
  EXPECT_GE(cache.stats().lease_waits, 1u);
  EXPECT_EQ(cache.stats().lease_acquired, 1u);
  EXPECT_EQ(cache.stats().lease_timeouts, 0u);
  cache.publish(9, nullptr);
  EXPECT_FALSE(fs::exists(lease));
}

// ---------------------------------------------------------------------------
// Disk GC of the shared store.

TEST(DiskGc, EnforcesByteBudgetOldestFirst) {
  const fs::path dir = fresh_dir("gc_budget");
  SynthCacheOptions fill = dir_options(dir);
  fill.cross_process_lease = false;
  SynthCache writer(fill);
  std::mt19937_64 rng(5);
  for (std::uint64_t key = 1; key <= 6; ++key) {
    const SynthCache::Acquisition acq = writer.acquire(key);
    ASSERT_EQ(acq.outcome, SynthCache::Outcome::kLead);
    const Circuit c = random_circuit(4, 6, GateLibrary::kGT, rng);
    writer.publish(key, &c);
  }
  std::uintmax_t total = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    total += fs::file_size(entry.path());
  }
  ASSERT_GT(total, 0u);

  SynthCacheOptions bounded = dir_options(dir);
  bounded.disk_byte_budget = total / 3;
  SynthCache collector(bounded);  // construction runs gc_disk()
  EXPECT_GE(collector.stats().disk_evictions, 1u);
  std::uintmax_t after = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    after += fs::file_size(entry.path());
  }
  EXPECT_LE(after, bounded.disk_byte_budget);
  EXPECT_LT(after, total);
}

TEST(DiskGc, SweepsStaleLeaseAndTmpLitter) {
  const fs::path dir = fresh_dir("gc_litter");
  const fs::path lease = dir / "00000000000000ab.lease";
  const fs::path tmp = dir / "00000000000000ab.tmp12345.0";
  { std::ofstream(lease) << "1"; }
  { std::ofstream(tmp) << "half a circuit"; }
  const auto old =
      fs::last_write_time(lease) - std::chrono::hours(2);
  fs::last_write_time(lease, old);
  fs::last_write_time(tmp, old);
  SynthCacheOptions options = dir_options(dir);
  options.lease_stale = std::chrono::milliseconds(500);
  SynthCache cache(options);  // construction runs gc_disk()
  EXPECT_FALSE(fs::exists(lease));
  EXPECT_FALSE(fs::exists(tmp));
}

// ---------------------------------------------------------------------------
// Two instances racing over one store (the in-process stand-in for two
// shard processes; the real-process version is FleetCli below).

TEST(Lease, TwoInstancesRacingOverSharedDirStayConsistent) {
  const fs::path dir = fresh_dir("lease_race");
  std::vector<BatchJob> jobs = corpus_jobs(10, 0.5, 17);
  assign_job_ids(jobs);
  SynthCacheOptions options = dir_options(dir);
  options.lease_wait = std::chrono::milliseconds(10000);

  BatchResult results[2];
  std::thread shards[2];
  SynthCache cache_a(options);
  SynthCache cache_b(options);
  SynthCache* caches[2] = {&cache_a, &cache_b};
  for (int i = 0; i < 2; ++i) {
    shards[i] = std::thread([&, i] {
      BatchOptions bopts;
      bopts.resilience.search.max_nodes = 200000;
      bopts.total_threads = 2;
      bopts.cache = caches[i];
      results[i] = run_batch(jobs, bopts);
    });
  }
  for (std::thread& t : shards) t.join();
  for (const BatchResult& br : results) {
    ASSERT_TRUE(br.status.ok());
    EXPECT_EQ(br.stats.completed, jobs.size());
    EXPECT_EQ(br.stats.failed, 0u);
  }
  // Both instances served the same corpus, so their outcome circuits must
  // realize the same specs; spot-check sizes agree per job.
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    EXPECT_EQ(results[0].outcomes[j].result.circuit.gate_count(),
              results[1].outcomes[j].result.circuit.gate_count())
        << jobs[j].name;
  }
}

// ---------------------------------------------------------------------------
// The real CLI under SIGKILL: resume must cover the corpus exactly once.

#ifdef RMRLS_CLI_PATH

struct CliRun {
  int exit_code = -1;
  bool signalled = false;
};

pid_t spawn_cli(const std::vector<std::string>& args,
                const std::string& stdout_path) {
  std::vector<std::string> cmd = {RMRLS_CLI_PATH};
  cmd.insert(cmd.end(), args.begin(), args.end());
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  const int fd = ::open(stdout_path.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    ::dup2(fd, 1);
    ::close(fd);
  }
  const int devnull = ::open("/dev/null", O_WRONLY);
  if (devnull >= 0) {
    ::dup2(devnull, 2);
    ::close(devnull);
  }
  std::vector<char*> argv;
  for (const std::string& s : cmd) {
    argv.push_back(const_cast<char*>(s.c_str()));
  }
  argv.push_back(nullptr);
  ::execv(argv[0], argv.data());
  _exit(127);
}

CliRun wait_cli(pid_t pid) {
  CliRun run;
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return run;
  if (WIFEXITED(status)) run.exit_code = WEXITSTATUS(status);
  run.signalled = WIFSIGNALED(status);
  return run;
}

std::set<std::string> checkpoint_ids(const fs::path& path) {
  std::set<std::string> ids;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    ids.insert(line);
  }
  return ids;
}

std::vector<std::string> result_lines(const fs::path& path) {
  std::vector<std::string> lines;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(FleetCli, SigkillThenResumeCoversCorpusExactlyOnce) {
  const fs::path dir = fresh_dir("cli_sigkill");
  // Moderately hard corpus: wide enough that a full pass takes long
  // enough to observe mid-run checkpoint state on most machines. Both
  // race outcomes (killed mid-run, or finished before the kill) are
  // valid; the exactly-once property must hold either way.
  suite::CorpusOptions copts;
  copts.size = 8;
  copts.repeat_rate = 0.3;
  copts.min_vars = 4;
  copts.max_vars = 5;
  copts.seed = 29;
  Result<std::vector<suite::CorpusEntry>> corpus =
      suite::generate_corpus(copts);
  ASSERT_TRUE(corpus.ok());
  const fs::path specs = dir / "corpus.specs";
  {
    std::ofstream out(specs);
    out << suite::write_corpus(corpus.value());
  }
  std::vector<BatchJob> jobs;
  for (suite::CorpusEntry& e : corpus.value()) {
    jobs.push_back(BatchJob{std::move(e.label), std::move(e.spec), ""});
  }
  assign_job_ids(jobs);
  std::set<std::string> expected_ids;
  for (const BatchJob& j : jobs) expected_ids.insert(j.id);
  ASSERT_EQ(expected_ids.size(), jobs.size());

  const fs::path ck = dir / "ck";
  const std::vector<std::string> batch_args = {
      "--batch",         specs.string(),
      "--checkpoint",    ck.string(),
      "--cache-dir",     (dir / "cache").string(),
      "--batch-threads", "1",
      "--max-nodes",     "800000",
  };

  // Run 1: kill as soon as the checkpoint records any progress.
  std::vector<std::string> run1 = batch_args;
  run1.push_back("--metrics-out");
  run1.push_back((dir / "m1.jsonl").string());
  const pid_t pid = spawn_cli(run1, (dir / "out1.txt").string());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (std::chrono::steady_clock::now() < deadline) {
    if (!checkpoint_ids(ck).empty()) break;
    if (::waitpid(pid, nullptr, WNOHANG) != 0) break;  // finished early
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ::kill(pid, SIGKILL);
  wait_cli(pid);
  const std::set<std::string> done_before = checkpoint_ids(ck);
  for (const std::string& id : done_before) {
    EXPECT_TRUE(expected_ids.count(id)) << "foreign id " << id;
  }

  // Run 2: same checkpoint, same store; must finish cleanly and skip
  // exactly what run 1 completed.
  std::vector<std::string> run2 = batch_args;
  run2.push_back("--metrics-out");
  run2.push_back((dir / "m2.jsonl").string());
  const pid_t pid2 = spawn_cli(run2, (dir / "out2.txt").string());
  const CliRun second = wait_cli(pid2);
  ASSERT_EQ(second.exit_code, 0);

  EXPECT_EQ(checkpoint_ids(ck), expected_ids);
  std::ifstream metrics(dir / "m2.jsonl");
  std::string line;
  bool saw_summary = false;
  while (std::getline(metrics, line)) {
    const std::optional<JsonValue> v = json_parse(line);
    if (!v || v->find("batch_jobs") == nullptr) continue;
    saw_summary = true;
    EXPECT_EQ(v->find("batch_jobs")->number,
              static_cast<double>(jobs.size()));
    EXPECT_EQ(v->find("batch_skipped")->number,
              static_cast<double>(done_before.size()));
    EXPECT_EQ(v->find("batch_completed")->number,
              static_cast<double>(jobs.size() - done_before.size()));
    EXPECT_EQ(v->find("batch_failed")->number, 0.0);
  }
  EXPECT_TRUE(saw_summary);

  // Exactly once, bit for bit: a clean reference run over a fresh store
  // prints every job; the resumed run must print exactly the jobs run 1
  // did not complete, with byte-identical circuit lines.
  std::vector<std::string> ref = {
      "--batch",         specs.string(),
      "--cache-dir",     (dir / "cache_ref").string(),
      "--batch-threads", "1",
      "--max-nodes",     "800000",
  };
  const pid_t pid3 = spawn_cli(ref, (dir / "out_ref.txt").string());
  const CliRun reference = wait_cli(pid3);
  ASSERT_EQ(reference.exit_code, 0);
  const std::vector<std::string> ref_lines =
      result_lines(dir / "out_ref.txt");
  EXPECT_EQ(ref_lines.size(), jobs.size());
  const std::vector<std::string> resumed_lines =
      result_lines(dir / "out2.txt");
  EXPECT_EQ(resumed_lines.size(), jobs.size() - done_before.size());
  const std::set<std::string> ref_set(ref_lines.begin(), ref_lines.end());
  for (const std::string& printed : resumed_lines) {
    EXPECT_TRUE(ref_set.count(printed))
        << "resumed output diverges from the clean run: " << printed;
  }
}

#endif  // RMRLS_CLI_PATH

}  // namespace
}  // namespace rmrls
