// Tests for the hardened (checked) parsers of io/: malformed input must
// come back as a structured Status with a file:line diagnostic, never as
// an exception or a crash (docs/robustness.md). The throwing wrappers are
// covered separately in test_io.cpp / test_real_format.cpp; here we pin
// the Status categories and diagnostics of the checked layer against a
// malformed-input corpus.

#include <gtest/gtest.h>

#include <string>

#include "core/status.hpp"
#include "io/real_format.hpp"
#include "io/spec.hpp"
#include "io/tfc.hpp"

namespace rmrls {
namespace {

// --- Status / Result plumbing ---------------------------------------------

TEST(Status, RendersFileLineDiagnostics) {
  const Status s = Status::parse_error("input.tfc", 7, "missing END");
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.to_string(), "input.tfc:7: missing END");
  EXPECT_EQ(s.file(), "input.tfc");
  EXPECT_EQ(s.line(), 7);

  const Status no_line = Status::invalid_spec("spec.txt", "not a permutation");
  EXPECT_EQ(no_line.to_string(), "spec.txt: not a permutation");

  const Status bare(StatusCode::kInternal, "boom");
  EXPECT_EQ(bare.to_string(), "boom");
  EXPECT_TRUE(Status().ok());
}

TEST(Status, ExitCodesAreDistinctPerCategory) {
  EXPECT_EQ(exit_code_for(StatusCode::kOk), 0);
  EXPECT_EQ(exit_code_for(StatusCode::kInvalidArgument), 2);
  EXPECT_EQ(exit_code_for(StatusCode::kParseError), 3);
  EXPECT_EQ(exit_code_for(StatusCode::kInvalidSpec), 3);
  EXPECT_EQ(exit_code_for(StatusCode::kBudgetExhausted), 4);
  EXPECT_EQ(exit_code_for(StatusCode::kCancelled), 5);
  EXPECT_EQ(exit_code_for(StatusCode::kInternal), 6);
}

TEST(Result, ValueAccessOnErrorIsLoud) {
  Result<int> r = Status::parse_error("f", 1, "bad");
  EXPECT_FALSE(r.ok());
  EXPECT_THROW((void)r.value(), std::logic_error);
  Result<int> good = 42;
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
}

// --- .tfc ------------------------------------------------------------------

Status tfc_status(const std::string& text) {
  const Result<Circuit> r = read_tfc_checked(text, "in.tfc");
  EXPECT_FALSE(r.ok()) << text;
  return r.status();
}

TEST(TfcRobustness, AcceptsWellFormed) {
  const Result<Circuit> r = read_tfc_checked(
      ".v a,b,c\nBEGIN\nt1 a\nt3 a,c,b\nEND\n", "in.tfc");
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r.value().gate_count(), 2);
}

TEST(TfcRobustness, TruncatedFile) {
  const Status s = tfc_status(".v a,b\nBEGIN\nt1 a\n");
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_NE(s.to_string().find("in.tfc:"), std::string::npos);
  EXPECT_NE(s.to_string().find("missing END"), std::string::npos);
}

TEST(TfcRobustness, ContentAfterEnd) {
  const Status s = tfc_status(".v a\nBEGIN\nEND\nt1 a\n");
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.line(), 4);
}

TEST(TfcRobustness, DuplicateLineNames) {
  const Status s = tfc_status(".v a,a\nBEGIN\nEND\n");
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.line(), 1);
  EXPECT_NE(s.message().find("duplicate"), std::string::npos);
}

TEST(TfcRobustness, GateOutsideBody) {
  EXPECT_EQ(tfc_status(".v a\nt1 a\nBEGIN\nEND\n").code(),
            StatusCode::kParseError);
}

TEST(TfcRobustness, ArityMismatch) {
  EXPECT_EQ(tfc_status(".v a,b\nBEGIN\nt3 a,b\nEND\n").code(),
            StatusCode::kParseError);
}

TEST(TfcRobustness, HugeArityDoesNotOverflow) {
  // 99999999999999999999 does not fit an int; stoi-based parsing threw,
  // from_chars reports out-of-range and the parser must diagnose it.
  const Status s =
      tfc_status(".v a,b\nBEGIN\nt99999999999999999999 a,b\nEND\n");
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_NE(s.message().find("arity"), std::string::npos);
}

TEST(TfcRobustness, UnknownLineAndUnknownGate) {
  EXPECT_EQ(tfc_status(".v a,b\nBEGIN\nt1 z\nEND\n").code(),
            StatusCode::kParseError);
  EXPECT_EQ(tfc_status(".v a,b\nBEGIN\nf2 a,b\nEND\n").code(),
            StatusCode::kParseError);
}

TEST(TfcRobustness, TooManyLines) {
  std::string text = ".v l0";
  for (int i = 1; i < 70; ++i) text += ",l" + std::to_string(i);
  text += "\nBEGIN\nEND\n";
  const Status s = tfc_status(text);
  EXPECT_EQ(s.code(), StatusCode::kParseError);
}

TEST(TfcRobustness, ThrowingWrapperStillThrows) {
  EXPECT_THROW((void)read_tfc(".v a\nBEGIN\n"), std::invalid_argument);
}

// --- .real -----------------------------------------------------------------

Status real_status(const std::string& text) {
  const Result<RealCircuit> r = read_real_checked(text, "in.real");
  EXPECT_FALSE(r.ok()) << text;
  return r.status();
}

TEST(RealRobustness, AcceptsWellFormed) {
  const Result<RealCircuit> r = read_real_checked(
      ".numvars 2\n.variables a b\n.begin\nt2 a b\n.end\n", "in.real");
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r.value().circuit.gate_count(), 1);
}

TEST(RealRobustness, TruncatedFile) {
  const Status s = real_status(".variables a b\n.begin\nt2 a b\n");
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_NE(s.to_string().find("in.real:"), std::string::npos);
}

TEST(RealRobustness, NumvarsOutOfRange) {
  EXPECT_EQ(real_status(".numvars 0\n.variables\n.begin\n.end\n").code(),
            StatusCode::kParseError);
  EXPECT_EQ(real_status(".numvars 65\n.begin\n.end\n").code(),
            StatusCode::kParseError);
  EXPECT_EQ(
      real_status(".numvars 3\n.variables a b\n.begin\n.end\n").code(),
      StatusCode::kParseError);
}

TEST(RealRobustness, MarkersAndBadGates) {
  const std::string header = ".variables a b\n.begin\n";
  EXPECT_EQ(real_status(header + "t2 -a b\n.end\n").code(),
            StatusCode::kParseError);  // negative-control marker
  EXPECT_EQ(real_status(header + "g2 a b\n.end\n").code(),
            StatusCode::kParseError);  // unknown gate kind
  EXPECT_EQ(real_status(header + "f1 a\n.end\n").code(),
            StatusCode::kParseError);  // Fredkin needs two targets
  EXPECT_EQ(real_status(header + "t2 a a\n.end\n").code(),
            StatusCode::kParseError);  // target repeated as control
}

TEST(RealRobustness, DuplicateVariables) {
  const Status s = real_status(".variables a a\n.begin\n.end\n");
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.line(), 1);
}

TEST(RealRobustness, ThrowingWrapperStillThrows) {
  EXPECT_THROW((void)read_real(".variables a\n.begin\n"),
               std::invalid_argument);
}

// --- permutation specs -----------------------------------------------------

Status spec_status(const std::string& text) {
  const Result<TruthTable> r = parse_permutation_spec_checked(text, "in.spec");
  EXPECT_FALSE(r.ok()) << text;
  return r.status();
}

TEST(SpecRobustness, AcceptsWellFormed) {
  const Result<TruthTable> r =
      parse_permutation_spec_checked("{1, 0, 7, 2, 3, 4, 5, 6}", "in.spec");
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r.value().size(), 8u);
}

TEST(SpecRobustness, EmptySpec) {
  EXPECT_EQ(spec_status("").code(), StatusCode::kParseError);
  EXPECT_EQ(spec_status("# only a comment\n").code(),
            StatusCode::kParseError);
}

TEST(SpecRobustness, GarbageCharacterWithLineNumber) {
  const Status s = spec_status("0 1\n2 x 3\n");
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.line(), 2);
}

TEST(SpecRobustness, SemanticErrorsAreInvalidSpec) {
  // Well-formed text, bad function: distinct category from parse errors.
  EXPECT_EQ(spec_status("0 0 1 2").code(), StatusCode::kInvalidSpec);
  EXPECT_EQ(spec_status("0 1 2").code(), StatusCode::kInvalidSpec);
  EXPECT_EQ(spec_status("0 1 2 5").code(), StatusCode::kInvalidSpec);
}

TEST(SpecRobustness, HugeEntryDoesNotWrap) {
  // 2^64 + 1 would alias 1 if the accumulator wrapped; the parser must
  // reject it as a parse error instead of reporting "duplicate entry 1".
  const Status s = spec_status("18446744073709551617 0");
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_NE(s.message().find("too large"), std::string::npos);
}

TEST(SpecRobustness, ThrowingWrapperStillThrows) {
  EXPECT_THROW((void)parse_permutation_spec("0 0 1 2"),
               std::invalid_argument);
}

}  // namespace
}  // namespace rmrls
