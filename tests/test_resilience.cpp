// Tests for the resilience layer (docs/robustness.md): cooperative
// cancellation, the watchdog, deadline behaviour of the engines, and the
// synthesize_resilient fallback cascade. The acceptance case of the
// subsystem — a 100 ms deadline on a 20-variable spec returning promptly
// with either a verified circuit or a structured budget status — lives in
// DeadlineAcceptance below; bench/deadline_overshoot measures the
// overshoot distribution.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "baselines/greedy_pprm.hpp"
#include "core/cancel.hpp"
#include "core/resilient.hpp"
#include "core/synthesizer.hpp"
#include "rev/equivalence.hpp"
#include "rev/pprm_transform.hpp"
#include "rev/random.hpp"

namespace rmrls {
namespace {

using std::chrono::milliseconds;
using Clock = std::chrono::steady_clock;

Pprm fig1_pprm() {
  return pprm_of_truth_table(TruthTable({1, 0, 7, 2, 3, 4, 5, 6}));
}

/// A wide spec from the scalability family (Section V-E): a random GT
/// cascade simulated into its PPRM. Hard enough that no engine finishes
/// it instantly at the budgets used here.
Pprm wide_spec(int vars, int gates) {
  std::mt19937_64 rng(7);
  return random_circuit(vars, gates, GateLibrary::kGT, rng).to_pprm();
}

TEST(CancelToken, FirstReasonWins) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kNone);
  token.cancel(CancelReason::kUser);
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kUser);
  token.cancel(CancelReason::kDeadline);  // latched: no overwrite
  EXPECT_EQ(token.reason(), CancelReason::kUser);
  token.reset();
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kNone);
}

TEST(WatchdogTest, FiresAfterDeadline) {
  CancelToken token;
  Watchdog watchdog(token, milliseconds(10));
  const auto give_up = Clock::now() + milliseconds(2000);
  while (!token.cancelled() && Clock::now() < give_up) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kDeadline);
  EXPECT_TRUE(watchdog.fired());
}

TEST(WatchdogTest, DisarmPreventsFiring) {
  CancelToken token;
  {
    Watchdog watchdog(token, milliseconds(10000));
    watchdog.disarm();
  }  // dtor joins; must not hang for 10 s
  EXPECT_FALSE(token.cancelled());
}

TEST(Cancellation, PreCancelledSearchReturnsImmediately) {
  CancelToken token;
  token.cancel(CancelReason::kUser);
  SynthesisOptions options;
  options.cancel_token = &token;
  const auto t0 = Clock::now();
  const SynthesisResult r = synthesize(fig1_pprm(), options);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.termination, TerminationReason::kCancelled);
  EXPECT_TRUE(r.stats.cancelled);
  EXPECT_LT(Clock::now() - t0, milliseconds(1000));
}

TEST(Cancellation, DeadlineReasonReportsTimeLimit) {
  // A watchdog-fired token must look like a deadline, not a user cancel.
  CancelToken token;
  token.cancel(CancelReason::kDeadline);
  SynthesisOptions options;
  options.cancel_token = &token;
  const SynthesisResult r = synthesize(fig1_pprm(), options);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.termination, TerminationReason::kTimeLimit);
  EXPECT_FALSE(r.stats.cancelled);
}

TEST(Cancellation, PreCancelledParallelReturnsImmediately) {
  CancelToken token;
  token.cancel(CancelReason::kUser);
  SynthesisOptions options;
  options.cancel_token = &token;
  options.num_threads = 2;
  const auto t0 = Clock::now();
  const SynthesisResult r = synthesize(wide_spec(8, 12), options);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.termination, TerminationReason::kCancelled);
  EXPECT_LT(Clock::now() - t0, milliseconds(2000));
}

TEST(Cancellation, GreedyHonorsToken) {
  CancelToken token;
  token.cancel(CancelReason::kUser);
  SynthesisOptions options;
  options.cancel_token = &token;
  const SynthesisResult r = synthesize_greedy(fig1_pprm(), options);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.termination, TerminationReason::kCancelled);
  EXPECT_TRUE(r.stats.cancelled);
}

TEST(Deadline, SynthesizeHonorsOverallTimeLimit) {
  // Unlimited nodes, refinement on: only the wall clock can stop this, and
  // it must stop the *whole* multi-pass driver, not each pass afresh.
  SynthesisOptions options;
  options.max_nodes = 0;
  options.time_limit = milliseconds(50);
  const auto t0 = Clock::now();
  const SynthesisResult r = synthesize(wide_spec(18, 24), options);
  const auto elapsed = Clock::now() - t0;
  EXPECT_LT(elapsed, milliseconds(1000));
  if (!r.success) {
    EXPECT_EQ(r.termination, TerminationReason::kTimeLimit);
  }
}

TEST(GreedyPartial, PreservedWhenGateCapHits) {
  SynthesisOptions options;
  options.max_gates = 1;  // fig1 needs 3 gates: forced to stop early
  const SynthesisResult r = synthesize_greedy(fig1_pprm(), options);
  ASSERT_FALSE(r.success);
  EXPECT_EQ(r.termination, TerminationReason::kNodeBudget);
  EXPECT_EQ(r.partial.gate_count(), 1);
  EXPECT_GT(r.partial_terms, 0);
}

TEST(Resilient, PrimaryWinsWhenItCan) {
  const ResilientResult rr = synthesize_resilient(fig1_pprm());
  ASSERT_TRUE(rr.status.ok());
  EXPECT_EQ(rr.engine, FallbackEngine::kBestFirst);
  EXPECT_TRUE(rr.verified);
  EXPECT_TRUE(rr.result.success);
  EXPECT_TRUE(equivalent(rr.result.circuit, fig1_pprm()));
}

TEST(Resilient, CascadesToGreedy) {
  // One node of search budget: best-first cannot find fig1's 3-gate
  // cascade, greedy can.
  ResilienceOptions options;
  options.search.max_nodes = 1;
  const ResilientResult rr = synthesize_resilient(fig1_pprm(), options);
  ASSERT_TRUE(rr.status.ok());
  EXPECT_EQ(rr.engine, FallbackEngine::kGreedy);
  EXPECT_TRUE(rr.verified);
  EXPECT_TRUE(equivalent(rr.result.circuit, fig1_pprm()));
}

TEST(Resilient, CascadesToTransformationBased) {
  // Pure wire swap: greedy has no productive first move (see
  // test_baselines), the constructive transformation engine still wins.
  const TruthTable swap({0, 2, 1, 3});
  ResilienceOptions options;
  options.search.max_nodes = 1;
  options.search.exempt_budget = 0;  // deny the search its swap chains
  const ResilientResult rr = synthesize_resilient(swap, options);
  ASSERT_TRUE(rr.status.ok());
  EXPECT_EQ(rr.engine, FallbackEngine::kTransformationBased);
  EXPECT_TRUE(rr.verified);
  EXPECT_TRUE(equivalent(rr.result.circuit, pprm_of_truth_table(swap)));
}

TEST(Resilient, StructuredFailureWhenEverythingDisabled) {
  const TruthTable swap({0, 2, 1, 3});
  ResilienceOptions options;
  options.search.max_nodes = 1;
  options.search.exempt_budget = 0;
  options.enable_greedy = false;
  options.enable_transformation = false;
  const ResilientResult rr = synthesize_resilient(swap, options);
  EXPECT_FALSE(rr.status.ok());
  EXPECT_EQ(rr.status.code(), StatusCode::kBudgetExhausted);
  EXPECT_EQ(rr.engine, FallbackEngine::kNone);
  EXPECT_FALSE(rr.result.success);
}

TEST(Resilient, UserCancelShortCircuitsTheCascade) {
  CancelToken token;
  token.cancel(CancelReason::kUser);
  ResilienceOptions options;
  options.cancel_token = &token;
  const ResilientResult rr = synthesize_resilient(fig1_pprm(), options);
  EXPECT_FALSE(rr.status.ok());
  EXPECT_EQ(rr.status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(rr.result.stats.cancelled);
}

TEST(Resilient, DeadlineAcceptance) {
  // The subsystem's acceptance criterion: a 100 ms deadline on a
  // 20-variable hard-family spec returns promptly with either a verified
  // circuit or a structured budget-exhausted status.
  const Pprm spec = wide_spec(20, 40);
  ResilienceOptions options;
  options.deadline = milliseconds(100);
  options.search.stop_at_first_solution = true;
  options.search.max_nodes = 0;
  const auto t0 = Clock::now();
  const ResilientResult rr = synthesize_resilient(spec, options);
  const auto elapsed =
      std::chrono::duration_cast<milliseconds>(Clock::now() - t0);
  // 150 ms per the acceptance criterion, with slack for loaded CI: the
  // bench (bench/deadline_overshoot) measures the true distribution.
  EXPECT_LT(elapsed.count(), 500) << "deadline overshoot";
  if (rr.status.ok()) {
    EXPECT_TRUE(rr.verified);
    EXPECT_TRUE(equivalent(rr.result.circuit, spec));
    EXPECT_NE(rr.engine, FallbackEngine::kNone);
  } else {
    EXPECT_EQ(rr.status.code(), StatusCode::kBudgetExhausted);
    EXPECT_EQ(rr.engine, FallbackEngine::kNone);
  }
  EXPECT_EQ(rr.result.stats.watchdog_fired, rr.watchdog_fired);
}

TEST(Resilient, PartialCascadeSurvivesBudgetMiss) {
  // Deny everything but a sliver of greedy: the result must carry the
  // incomplete cascade greedy built before the clock ran out.
  const Pprm spec = wide_spec(16, 24);
  ResilienceOptions options;
  options.search.max_nodes = 1;
  options.enable_transformation = false;
  options.deadline = milliseconds(60);
  const ResilientResult rr = synthesize_resilient(spec, options);
  if (!rr.status.ok()) {
    EXPECT_EQ(rr.status.code(), StatusCode::kBudgetExhausted);
    // Greedy always manages at least one substitution on this family
    // before any plausible deadline, so a partial must be present.
    EXPECT_GE(rr.result.partial_terms, 0);
  }
}

}  // namespace
}  // namespace rmrls
