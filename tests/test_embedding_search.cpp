// Tests for the don't-care / garbage-assignment search (the paper's
// Section VI future work).

#include "rev/embedding_search.hpp"

#include <gtest/gtest.h>

#include <bit>

namespace rmrls {
namespace {

IrreversibleSpec adder_spec() {
  IrreversibleSpec spec;
  spec.num_inputs = 3;
  spec.num_outputs = 3;
  spec.outputs.resize(8);
  for (std::uint64_t x = 0; x < 8; ++x) {
    const int a = static_cast<int>(x & 1);
    const int b = static_cast<int>((x >> 1) & 1);
    const int c = static_cast<int>((x >> 2) & 1);
    const int ones = a + b + c;
    spec.outputs[x] = static_cast<std::uint64_t>((ones >= 2) |
                                                 ((ones & 1) << 1) |
                                                 ((a ^ b) << 2));
  }
  return spec;
}

IrreversibleSpec majority_spec(int n) {
  IrreversibleSpec spec;
  spec.num_inputs = n;
  spec.num_outputs = 1;
  spec.outputs.resize(std::uint64_t{1} << n);
  for (std::uint64_t x = 0; x < spec.outputs.size(); ++x) {
    spec.outputs[x] = std::popcount(x) > n / 2 ? 1 : 0;
  }
  return spec;
}

void expect_valid_embedding(const IrreversibleSpec& spec,
                            const Embedding& e) {
  const std::uint64_t out_mask = (std::uint64_t{1} << spec.num_outputs) - 1;
  for (std::uint64_t x = 0; x < (std::uint64_t{1} << spec.num_inputs); ++x) {
    EXPECT_EQ(e.table.apply(x) & out_mask, spec.outputs[x]) << "x=" << x;
  }
}

TEST(EmbeddingVariants, AllRestrictCorrectly) {
  const IrreversibleSpec spec = adder_spec();
  expect_valid_embedding(spec, embed(spec));
  expect_valid_embedding(spec, embed_identity_fill(spec));
  expect_valid_embedding(spec, embed_input_echo(spec));
}

TEST(EmbeddingVariants, InputEchoGarbageMirrorsInputs) {
  // For the adder, one input bit distinguishes every repeated output
  // (the paper uses g_o = a); the echo tag is then that input bit.
  const IrreversibleSpec spec = adder_spec();
  const Embedding e = embed_input_echo(spec);
  EXPECT_EQ(e.garbage_outputs, 1);
  // The garbage line equals one fixed input bit on all real rows.
  bool some_bit_matches = false;
  for (int bit = 0; bit < 3; ++bit) {
    bool matches = true;
    for (std::uint64_t x = 0; x < 8; ++x) {
      const std::uint64_t tag = e.table.apply(x) >> 3;
      if (tag != ((x >> bit) & 1)) {
        matches = false;
        break;
      }
    }
    some_bit_matches |= matches;
  }
  EXPECT_TRUE(some_bit_matches);
}

TEST(EmbeddingVariants, IdentityFillFixesFreeDontCares) {
  // decod24-like one-hot decoder: 2 inputs, 4 outputs -> 4 lines, so
  // 12 of the 16 rows are don't-cares available for identity filling.
  IrreversibleSpec spec;
  spec.num_inputs = 2;
  spec.num_outputs = 4;
  spec.outputs = {1, 2, 4, 8};
  const Embedding e = embed_identity_fill(spec);
  int fixed_rows = 0;
  for (std::uint64_t x = 4; x < e.table.size(); ++x) {
    if (e.table.apply(x) == x) ++fixed_rows;
  }
  EXPECT_GT(fixed_rows, 6);
  expect_valid_embedding(spec, e);
}

TEST(EmbeddingSearch, FindsAtLeastTheBaseline) {
  EmbeddingSearchOptions o;
  o.synthesis.max_nodes = 30000;
  o.random_attempts = 2;
  const IrreversibleSpec spec = adder_spec();
  const EmbeddingSearchResult r = find_best_embedding(spec, o);
  ASSERT_TRUE(r.synthesis.success);
  EXPECT_GE(r.attempts, 3);
  EXPECT_GE(r.solved, 1);
  expect_valid_embedding(spec, r.embedding);
  EXPECT_TRUE(implements(r.synthesis.circuit, r.embedding.table));
  // The baseline occurrence-counter embedding needs ~13 gates; the
  // portfolio must do at least as well as the plain embed() run.
  SynthesisOptions plain;
  plain.max_nodes = 30000;
  const SynthesisResult baseline = synthesize(embed(spec).table, plain);
  ASSERT_TRUE(baseline.success);
  EXPECT_LE(r.synthesis.circuit.gate_count(),
            baseline.circuit.gate_count());
}

TEST(EmbeddingSearch, BeatsBaselineOnTheAdder) {
  // The point of the feature: a better garbage assignment gives a much
  // smaller adder (the paper's hand embedding reaches 4 gates).
  EmbeddingSearchOptions o;
  o.synthesis.max_nodes = 30000;
  const EmbeddingSearchResult r = find_best_embedding(adder_spec(), o);
  ASSERT_TRUE(r.synthesis.success);
  EXPECT_LE(r.synthesis.circuit.gate_count(), 8);
}

TEST(EmbeddingSearch, DeterministicForFixedSeed) {
  EmbeddingSearchOptions o;
  o.synthesis.max_nodes = 10000;
  o.seed = 7;
  const EmbeddingSearchResult a = find_best_embedding(majority_spec(3), o);
  const EmbeddingSearchResult b = find_best_embedding(majority_spec(3), o);
  ASSERT_TRUE(a.synthesis.success);
  EXPECT_EQ(a.synthesis.circuit, b.synthesis.circuit);
  EXPECT_EQ(a.embedding.table, b.embedding.table);
}

}  // namespace
}  // namespace rmrls
