// Tests for the structural PPRM builders (shifters, Gray code).

#include "rev/structural.hpp"

#include <gtest/gtest.h>

#include <random>

#include "rev/pprm_transform.hpp"

namespace rmrls {
namespace {

TEST(Graycode, PprmMatchesEvaluatorExhaustively) {
  for (int n : {2, 4, 6}) {
    const Pprm p = graycode_pprm(n);
    for (std::uint64_t x = 0; x < (std::uint64_t{1} << n); ++x) {
      EXPECT_EQ(p.eval(x), graycode_eval(n, x)) << "n=" << n << " x=" << x;
    }
  }
}

TEST(Graycode, TermCountIsLinear) {
  EXPECT_EQ(graycode_pprm(6).term_count(), 11);    // 2n - 1
  EXPECT_EQ(graycode_pprm(20).term_count(), 39);
}

TEST(Graycode, IsAPermutation) {
  EXPECT_NO_THROW(truth_table_of_pprm(graycode_pprm(8)));
}

TEST(Graycode, WideConstructionSampled) {
  const int n = 40;
  const Pprm p = graycode_pprm(n);
  std::mt19937_64 rng(21);
  for (int i = 0; i < 512; ++i) {
    const std::uint64_t x = rng() & ((std::uint64_t{1} << n) - 1);
    EXPECT_EQ(p.eval(x), graycode_eval(n, x));
  }
}

TEST(Shifter, PprmMatchesEvaluatorExhaustively) {
  const int data = 4;  // 6 lines -> exhaustive check feasible
  const Pprm p = shifter_pprm(data);
  for (std::uint64_t x = 0; x < (std::uint64_t{1} << (data + 2)); ++x) {
    EXPECT_EQ(p.eval(x), shifter_eval(data, x)) << "x=" << x;
  }
}

TEST(Shifter, ControlsSelectAddedAmount) {
  // Per Examples 6/7, "wraparound shift by k positions" adds k mod 2^n.
  const int data = 5;
  EXPECT_EQ(shifter_eval(data, 0b10110'00), 0b10110'00u);  // +0
  EXPECT_EQ(shifter_eval(data, 0b10110'01), 0b10111'01u);  // +1
  EXPECT_EQ(shifter_eval(data, 0b10110'10), 0b11000'10u);  // +2
  EXPECT_EQ(shifter_eval(data, 0b11111'11), 0b00010'11u);  // +3 wraps
}

TEST(Shifter, ReferenceCircuitImplementsTheSpec) {
  const int data = 6;
  const Circuit c = shifter_reference_circuit(data);
  EXPECT_EQ(c.gate_count(), 2 * data - 1);
  for (std::uint64_t x = 0; x < (std::uint64_t{1} << (data + 2)); ++x) {
    EXPECT_EQ(c.simulate(x), shifter_eval(data, x));
  }
}

TEST(Shifter, IsAPermutation) {
  EXPECT_NO_THROW(truth_table_of_pprm(shifter_pprm(6)));
}

TEST(Shifter, Shift28MatchesEvaluatorSampled) {
  // 30 lines: the paper's widest benchmark; no truth table possible.
  const Pprm p = shifter_pprm(28);
  std::mt19937_64 rng(22);
  for (int i = 0; i < 512; ++i) {
    const std::uint64_t x = rng() & ((std::uint64_t{1} << 30) - 1);
    EXPECT_EQ(p.eval(x), shifter_eval(28, x));
  }
}

TEST(Shifter, TermBudgetIsSmall) {
  // Each data output expands to at most 4 cubes (carry-chain structure).
  const Pprm p = shifter_pprm(28);
  for (int i = 2; i < 30; ++i) EXPECT_LE(p.output(i).size(), 4);
  EXPECT_EQ(p.output(0).size(), 1);
  EXPECT_EQ(p.output(1).size(), 1);
}

TEST(Structural, RejectsBadWidths) {
  EXPECT_THROW(graycode_pprm(0), std::invalid_argument);
  EXPECT_THROW(graycode_pprm(65), std::invalid_argument);
  EXPECT_THROW(shifter_pprm(2), std::invalid_argument);
  EXPECT_THROW(shifter_pprm(63), std::invalid_argument);
}

}  // namespace
}  // namespace rmrls
