// Tests for the baseline synthesizers: greedy PPRM, the Miller-Maslov-Dueck
// transformation-based algorithm, and the BFS optimal-count oracle.

#include <gtest/gtest.h>

#include <random>

#include "baselines/greedy_pprm.hpp"
#include "baselines/optimal_bfs.hpp"
#include "baselines/transformation_based.hpp"
#include "core/synthesizer.hpp"
#include "rev/random.hpp"

namespace rmrls {
namespace {

TEST(TransformationBased, AlwaysCorrectOnRandomFunctions) {
  std::mt19937_64 rng(41);
  for (int n = 1; n <= 6; ++n) {
    for (int trial = 0; trial < 10; ++trial) {
      const TruthTable spec = random_reversible_function(n, rng);
      const Circuit c = synthesize_transformation_based(spec);
      EXPECT_TRUE(implements(c, spec)) << "n=" << n << " trial=" << trial;
    }
  }
}

TEST(TransformationBased, IdentityYieldsEmptyCircuit) {
  EXPECT_EQ(synthesize_transformation_based(TruthTable::identity(4))
                .gate_count(),
            0);
}

TEST(TransformationBased, GateBoundHolds) {
  // The constructive bound: each of the 2^n rows needs at most 2n gates.
  std::mt19937_64 rng(42);
  const int n = 5;
  const TruthTable spec = random_reversible_function(n, rng);
  const Circuit c = synthesize_transformation_based(spec);
  EXPECT_LE(c.gate_count(), 2 * n << n);
}

TEST(TransformationBased, HandlesFZeroSpecially) {
  // f(0) != 0 requires leading NOTs (the DAC'03 base case).
  const TruthTable spec({7, 0, 1, 2, 3, 4, 5, 6});
  const Circuit c = synthesize_transformation_based(spec);
  EXPECT_TRUE(implements(c, spec));
}

TEST(TransformationBidir, AlwaysCorrectOnRandomFunctions) {
  std::mt19937_64 rng(43);
  for (int n = 1; n <= 6; ++n) {
    for (int trial = 0; trial < 10; ++trial) {
      const TruthTable spec = random_reversible_function(n, rng);
      const Circuit c = synthesize_transformation_bidir(spec);
      EXPECT_TRUE(implements(c, spec)) << "n=" << n << " trial=" << trial;
    }
  }
}

TEST(TransformationBidir, NeverWorseOnAverageSample) {
  // Bidirectional chooses the cheaper side per row; over a sample it must
  // not lose to the basic variant in total.
  std::mt19937_64 rng(44);
  long basic_total = 0;
  long bidir_total = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const TruthTable spec = random_reversible_function(4, rng);
    basic_total += synthesize_transformation_based(spec).gate_count();
    bidir_total += synthesize_transformation_bidir(spec).gate_count();
  }
  EXPECT_LE(bidir_total, basic_total);
}

TEST(TransformationPerm, AlwaysCorrectAndNeverWorseThanBidir) {
  std::mt19937_64 rng(48);
  for (int n = 2; n <= 4; ++n) {
    for (int trial = 0; trial < 8; ++trial) {
      const TruthTable spec = random_reversible_function(n, rng);
      const Circuit c = synthesize_transformation_perm(spec);
      EXPECT_TRUE(implements(c, spec)) << spec.to_string();
      EXPECT_LE(c.gate_count(),
                synthesize_transformation_bidir(spec).gate_count());
    }
  }
}

TEST(TransformationPerm, WireSwapCostsOnlyTheSwapNetwork) {
  // A pure wire swap relabels to the identity under the right pi, so the
  // synthesized core is empty and only the 3-CNOT undo network remains.
  const TruthTable swap_ab({0, 2, 1, 3});
  const Circuit c = synthesize_transformation_perm(swap_ab);
  EXPECT_TRUE(implements(c, swap_ab));
  EXPECT_LE(c.gate_count(), 3);
}

TEST(TransformationPerm, RejectsWideFunctions) {
  std::mt19937_64 rng(49);
  EXPECT_THROW(
      synthesize_transformation_perm(random_reversible_function(7, rng)),
      std::invalid_argument);
}

TEST(GreedyPprm, SolvesEasyFunctionsAndVerifies) {
  const TruthTable fig1({1, 0, 7, 2, 3, 4, 5, 6});
  const SynthesisResult r = synthesize_greedy(fig1);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(implements(r.circuit, fig1));
  EXPECT_EQ(r.circuit.gate_count(), 3);
}

TEST(GreedyPprm, ReportsFailureHonestly) {
  // Pure wire swap: greedy has no productive first move.
  const SynthesisResult r = synthesize_greedy(TruthTable({0, 2, 1, 3}));
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.circuit.gate_count(), 0);
}

TEST(OptimalBfs, NctHistogramMatchesShendeTable) {
  // The Optimal [16] NCT column of the paper's Table I, exactly.
  const OptimalCounts3 opt(OptimalLibrary::kNCT);
  const std::vector<std::uint64_t> expected = {1,    12,   102,  625,  2780,
                                               8921, 17049, 10253, 577};
  ASSERT_EQ(opt.histogram().size(), expected.size());
  for (std::size_t d = 0; d < expected.size(); ++d) {
    EXPECT_EQ(opt.histogram()[d], expected[d]) << "depth " << d;
  }
  EXPECT_NEAR(opt.average(), 5.87, 0.005);
}

TEST(OptimalBfs, NctsHistogramMatchesShendeTable) {
  // The Optimal [16] NCTS column: max depth 8, 32 functions at depth 8.
  const OptimalCounts3 opt(OptimalLibrary::kNCTS);
  const std::vector<std::uint64_t> expected = {1,    15,   134,  844, 3752,
                                               11194, 17531, 6817, 32};
  ASSERT_EQ(opt.histogram().size(), expected.size());
  for (std::size_t d = 0; d < expected.size(); ++d) {
    EXPECT_EQ(opt.histogram()[d], expected[d]) << "depth " << d;
  }
  EXPECT_NEAR(opt.average(), 5.63, 0.005);
}

TEST(OptimalBfs, DistanceOracleAgreesWithKnownCircuits) {
  const OptimalCounts3 opt(OptimalLibrary::kNCT);
  EXPECT_EQ(opt.distance(TruthTable::identity(3)), 0);
  EXPECT_EQ(opt.distance(TruthTable({1, 0, 3, 2, 5, 4, 7, 6})), 1);  // NOT a
  // 3_17 is known to need 6 NCT gates.
  EXPECT_EQ(opt.distance(TruthTable({7, 1, 4, 3, 0, 2, 6, 5})), 6);
}

TEST(OptimalBfs, LowerBoundsEverySynthesizer) {
  const OptimalCounts3 opt(OptimalLibrary::kNCT);
  std::mt19937_64 rng(45);
  SynthesisOptions o;
  o.max_nodes = 20000;
  for (int trial = 0; trial < 20; ++trial) {
    const TruthTable spec = random_reversible_function(3, rng);
    const SynthesisResult r = synthesize(spec, o);
    ASSERT_TRUE(r.success);
    EXPECT_GE(r.circuit.gate_count(), opt.distance(spec));
    EXPECT_GE(synthesize_transformation_bidir(spec).gate_count(),
              opt.distance(spec));
  }
}

TEST(OptimalBfs, PackRejectsWrongWidth) {
  EXPECT_THROW(OptimalCounts3::pack(TruthTable::identity(2)),
               std::invalid_argument);
}

TEST(OptimalBfs, ExtractedCircuitsAreOptimalAndCorrect) {
  const OptimalCounts3 opt(OptimalLibrary::kNCT);
  std::mt19937_64 rng(46);
  for (int trial = 0; trial < 25; ++trial) {
    const TruthTable spec = random_reversible_function(3, rng);
    const MixedCircuit c = opt.circuit(spec);
    EXPECT_EQ(c.gate_count(), opt.distance(spec));
    for (std::uint64_t x = 0; x < 8; ++x) {
      EXPECT_EQ(c.simulate(x), spec.apply(x));
    }
  }
  EXPECT_EQ(opt.circuit(TruthTable::identity(3)).gate_count(), 0);
}

TEST(OptimalBfs, NctsCircuitsUseSwapGates) {
  // The wire swap {0,2,1,3,...} on 3 lines is one SWAP in NCTS but three
  // CNOTs in NCT.
  const TruthTable swap_ab({0, 2, 1, 3, 4, 6, 5, 7});
  const OptimalCounts3 nct(OptimalLibrary::kNCT);
  const OptimalCounts3 ncts(OptimalLibrary::kNCTS);
  EXPECT_EQ(nct.distance(swap_ab), 3);
  EXPECT_EQ(ncts.distance(swap_ab), 1);
  const MixedCircuit c = ncts.circuit(swap_ab);
  ASSERT_EQ(c.gate_count(), 1);
  EXPECT_EQ(c.gates()[0].kind, MixedGate::Kind::kFredkin);
  for (std::uint64_t x = 0; x < 8; ++x) {
    EXPECT_EQ(c.simulate(x), swap_ab.apply(x));
  }
}

TEST(SynthesizeBidirectional, NeverWorseThanForwardAlone) {
  std::mt19937_64 rng(47);
  SynthesisOptions o;
  o.max_nodes = 20000;
  for (int trial = 0; trial < 10; ++trial) {
    const TruthTable spec = random_reversible_function(3, rng);
    const SynthesisResult fwd = synthesize(spec, o);
    SynthesisOptions both = o;
    both.max_nodes = 2 * o.max_nodes;  // same total effort
    const SynthesisResult bi = synthesize_bidirectional(spec, both);
    ASSERT_TRUE(bi.success);
    EXPECT_TRUE(implements(bi.circuit, spec));
    if (fwd.success) {
      EXPECT_LE(bi.circuit.gate_count(), fwd.circuit.gate_count());
    }
  }
}

}  // namespace
}  // namespace rmrls
