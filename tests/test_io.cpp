// Tests for the .tfc reader/writer, the permutation-spec parser, and the
// table printer used by the bench harnesses.

#include <gtest/gtest.h>

#include <random>

#include "io/spec.hpp"
#include "io/table.hpp"
#include "io/tfc.hpp"
#include "rev/random.hpp"

namespace rmrls {
namespace {

TEST(Tfc, WriteContainsExpectedSections) {
  Circuit c(3);
  c.append(Gate(cube_of_var(0) | cube_of_var(2), 1));
  c.append(Gate(kConstOne, 0));
  const std::string text = write_tfc(c);
  EXPECT_NE(text.find(".v a,b,c"), std::string::npos);
  EXPECT_NE(text.find("BEGIN"), std::string::npos);
  EXPECT_NE(text.find("t3 a,c,b"), std::string::npos);
  EXPECT_NE(text.find("t1 a"), std::string::npos);
  EXPECT_NE(text.find("END"), std::string::npos);
}

TEST(Tfc, RoundTripPreservesCircuits) {
  std::mt19937_64 rng(61);
  for (int n : {2, 3, 5, 8, 27}) {
    const Circuit c = random_circuit(n, 15, GateLibrary::kGT, rng);
    EXPECT_EQ(read_tfc(write_tfc(c)), c) << "width " << n;
  }
}

TEST(Tfc, ParsesHandWrittenFile) {
  const std::string text =
      "# a comment\n"
      ".v a,b,c\n"
      ".i a,b,c\n"
      ".o a,b,c\n"
      "BEGIN\n"
      "t2 a,b  # CNOT\n"
      "t1 c\n"
      "END\n";
  const Circuit c = read_tfc(text);
  EXPECT_EQ(c.num_lines(), 3);
  ASSERT_EQ(c.gate_count(), 2);
  EXPECT_EQ(c.gates()[0], Gate(cube_of_var(0), 1));
  EXPECT_EQ(c.gates()[1], Gate(kConstOne, 2));
}

TEST(Tfc, RejectsMalformedInput) {
  EXPECT_THROW(read_tfc("BEGIN\nEND\n"), std::invalid_argument);  // no .v
  EXPECT_THROW(read_tfc(".v a,b\nt1 a\n"), std::invalid_argument);  // no BEGIN
  EXPECT_THROW(read_tfc(".v a,b\nBEGIN\nt1 z\nEND\n"),
               std::invalid_argument);  // unknown line
  EXPECT_THROW(read_tfc(".v a,b\nBEGIN\nt3 a,b\nEND\n"),
               std::invalid_argument);  // arity mismatch
  EXPECT_THROW(read_tfc(".v a,b\nBEGIN\nt2 a,a\nEND\n"),
               std::invalid_argument);  // repeated operand
  EXPECT_THROW(read_tfc(".v a,b\nBEGIN\nf2 a,b\nEND\n"),
               std::invalid_argument);  // unsupported gate kind
  EXPECT_THROW(read_tfc(".v a,b\nBEGIN\n"), std::invalid_argument);  // no END
  EXPECT_THROW(read_tfc(".v a,a\nBEGIN\nEND\n"),
               std::invalid_argument);  // duplicate line name
}

TEST(SpecParser, AcceptsPaperNotation) {
  const TruthTable t = parse_permutation_spec("{1, 0, 7, 2, 3, 4, 5, 6}");
  EXPECT_EQ(t.apply(2), 7u);
  EXPECT_EQ(t.num_vars(), 3);
}

TEST(SpecParser, AcceptsBareAndMultilineForms) {
  EXPECT_EQ(parse_permutation_spec("1 0\n"), TruthTable({1, 0}));
  EXPECT_EQ(parse_permutation_spec("# header\n3,2,\n1,0"),
            TruthTable({3, 2, 1, 0}));
}

TEST(SpecParser, RejectsGarbage) {
  EXPECT_THROW(parse_permutation_spec(""), std::invalid_argument);
  EXPECT_THROW(parse_permutation_spec("1 0 x"), std::invalid_argument);
  EXPECT_THROW(parse_permutation_spec("0 0 1 2"), std::invalid_argument);
  EXPECT_THROW(parse_permutation_spec("0 1 2"), std::invalid_argument);
}

TEST(SpecParser, RoundTripsWithWriter) {
  const TruthTable t({3, 0, 2, 7, 1, 4, 6, 5});
  EXPECT_EQ(parse_permutation_spec(write_permutation_spec(t)), t);
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "gates"});
  t.add_row({"rd53", "13"});
  t.add_row({"alu", "118"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name  gates"), std::string::npos);
  EXPECT_NE(s.find("rd53     13"), std::string::npos);
  EXPECT_NE(s.find(" alu    118"), std::string::npos);
}

TEST(TextTable, RejectsAriityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(Fixed, FormatsDoubles) {
  EXPECT_EQ(fixed(6.104, 2), "6.10");
  EXPECT_EQ(fixed(0.5, 0), "0");
  EXPECT_EQ(fixed(1.0 / 3.0, 4), "0.3333");
}

}  // namespace
}  // namespace rmrls
