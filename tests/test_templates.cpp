// Tests for the template-based post-synthesis simplification pass.

#include "templates/simplify.hpp"

#include <gtest/gtest.h>

#include <random>

#include "rev/random.hpp"

namespace rmrls {
namespace {

TEST(Templates, CancelsAdjacentDuplicates) {
  Circuit c(3);
  const Gate g(cube_of_var(0), 1);
  c.append(g);
  c.append(g);
  const SimplifyResult r = simplify_templates(c);
  EXPECT_EQ(r.circuit.gate_count(), 0);
  EXPECT_EQ(r.removed_gates, 2);
}

TEST(Templates, CancelsThroughCommutingGates) {
  // g ... h ... g with g and h commuting cancels the pair.
  Circuit c(3);
  const Gate g(cube_of_var(0), 1);
  const Gate h(cube_of_var(0), 2);  // shares control, different target
  c.append(g);
  c.append(h);
  c.append(g);
  const SimplifyResult r = simplify_templates(c);
  EXPECT_EQ(r.circuit.gate_count(), 1);
  EXPECT_EQ(r.circuit.gates()[0], h);
}

TEST(Templates, DoesNotCancelAcrossBlockingGate) {
  // h's target feeds g's control: the pair may not be brought together.
  Circuit c(3);
  const Gate g(cube_of_var(0), 1);
  const Gate h(cube_of_var(2), 0);  // writes g's control line
  c.append(g);
  c.append(h);
  c.append(g);
  const SimplifyResult r = simplify_templates(c);
  EXPECT_EQ(r.circuit.gate_count(), 3);
}

TEST(Templates, CascadedCancellation) {
  // a b b a -> a a -> empty: needs the rescan after a cancellation.
  Circuit c(3);
  const Gate a(cube_of_var(0), 1);
  const Gate b(cube_of_var(1), 2);
  c.append(a);
  c.append(b);
  c.append(b);
  c.append(a);
  const SimplifyResult r = simplify_templates(c);
  EXPECT_EQ(r.circuit.gate_count(), 0);
  EXPECT_EQ(r.removed_gates, 4);
}

class TemplateProperty : public ::testing::TestWithParam<int> {};

TEST_P(TemplateProperty, PreservesFunctionNeverGrows) {
  const int n = GetParam();
  std::mt19937_64 rng(51 + static_cast<unsigned>(n));
  for (int trial = 0; trial < 25; ++trial) {
    Circuit c = random_circuit(n, 20, GateLibrary::kGT, rng);
    // Inject a duplicate pair somewhere to give the pass real work.
    if (c.gate_count() > 2) {
      c.append(c.gates()[static_cast<std::size_t>(trial) %
                         c.gates().size()]);
    }
    const SimplifyResult r = simplify_templates(c);
    EXPECT_LE(r.circuit.gate_count(), c.gate_count());
    EXPECT_EQ(r.circuit.to_truth_table(), c.to_truth_table());
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, TemplateProperty,
                         ::testing::Values(3, 4, 5, 6));

TEST(Templates, IsIdempotent) {
  std::mt19937_64 rng(52);
  const Circuit c = random_circuit(5, 30, GateLibrary::kGT, rng);
  const SimplifyResult once = simplify_templates(c);
  const SimplifyResult twice = simplify_templates(once.circuit);
  EXPECT_EQ(twice.circuit, once.circuit);
  EXPECT_EQ(twice.removed_gates, 0);
}

TEST(Templates, EmptyCircuit) {
  const SimplifyResult r = simplify_templates(Circuit(4));
  EXPECT_EQ(r.circuit.gate_count(), 0);
  EXPECT_EQ(r.removed_gates, 0);
}

}  // namespace
}  // namespace rmrls
