// Tests for the GF(2) Moebius (Reed-Muller) transform and PPRM extraction.

#include "rev/pprm_transform.hpp"

#include <gtest/gtest.h>

#include <random>

#include "rev/random.hpp"

namespace rmrls {
namespace {

TEST(ReedMuller, KnownSmallTransform) {
  // f(x) = x0 AND x1 has PPRM "ab" only.
  std::vector<std::uint8_t> f{0, 0, 0, 1};
  reed_muller_transform(f);
  EXPECT_EQ(f, (std::vector<std::uint8_t>{0, 0, 0, 1}));
  // f(x) = x0 OR x1 = a + b + ab.
  f = {0, 1, 1, 1};
  reed_muller_transform(f);
  EXPECT_EQ(f, (std::vector<std::uint8_t>{0, 1, 1, 1}));
  // f(x) = NOT x0 = 1 + a.
  f = {1, 0, 1, 0};
  reed_muller_transform(f);
  EXPECT_EQ(f, (std::vector<std::uint8_t>{1, 1, 0, 0}));
}

TEST(ReedMuller, RejectsNonPowerOfTwo) {
  std::vector<std::uint8_t> f{0, 1, 0};
  EXPECT_THROW(reed_muller_transform(f), std::invalid_argument);
}

TEST(ReedMuller, Fig1ExpansionMatchesPaper) {
  // The paper derives (eq. 3): a_o = a + 1, b_o = b + c + ac,
  // c_o = b + ab + ac for the function of Fig. 1.
  const TruthTable fig1({1, 0, 7, 2, 3, 4, 5, 6});
  const Pprm p = pprm_of_truth_table(fig1);
  EXPECT_EQ(p.output(0).to_string(3), "1 + a");
  EXPECT_EQ(p.output(1).to_string(3), "b + c + ac");
  EXPECT_EQ(p.output(2).to_string(3), "b + ab + ac");
}

class TransformRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(TransformRoundTrip, TransformIsInvolution) {
  const int n = GetParam();
  std::mt19937_64 rng(17 + static_cast<unsigned>(n));
  std::uniform_int_distribution<int> bit(0, 1);
  std::vector<std::uint8_t> f(std::size_t{1} << n);
  for (auto& v : f) v = static_cast<std::uint8_t>(bit(rng));
  std::vector<std::uint8_t> copy = f;
  reed_muller_transform(copy);
  reed_muller_transform(copy);
  EXPECT_EQ(copy, f);
}

TEST_P(TransformRoundTrip, TableToPprmToTableIsIdentity) {
  const int n = GetParam();
  std::mt19937_64 rng(99 + static_cast<unsigned>(n));
  for (int trial = 0; trial < 10; ++trial) {
    const TruthTable tt = random_reversible_function(n, rng);
    const Pprm p = pprm_of_truth_table(tt);
    EXPECT_EQ(truth_table_of_pprm(p), tt);
  }
}

TEST_P(TransformRoundTrip, PprmEvalMatchesTable) {
  const int n = GetParam();
  std::mt19937_64 rng(7 + static_cast<unsigned>(n));
  const TruthTable tt = random_reversible_function(n, rng);
  const Pprm p = pprm_of_truth_table(tt);
  for (std::uint64_t x = 0; x < tt.size(); ++x) {
    EXPECT_EQ(p.eval(x), tt.apply(x));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, TransformRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8));

TEST(PprmOfTruthVector, ConstantFunctions) {
  EXPECT_TRUE(pprm_of_truth_vector({0, 0, 0, 0}).empty());
  const CubeList one = pprm_of_truth_vector({1, 1, 1, 1});
  EXPECT_EQ(one.size(), 1);
  EXPECT_TRUE(one.contains(kConstOne));
}

TEST(TruthTableOfPprm, RejectsNonBijectiveSystem) {
  Pprm p(2);  // all outputs zero: constant, not a permutation
  EXPECT_THROW(truth_table_of_pprm(p), std::invalid_argument);
}

}  // namespace
}  // namespace rmrls
