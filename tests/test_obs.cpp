/// \file test_obs.cpp
/// \brief Observability subsystem: event/counter consistency, phase
/// timers, termination reasons, and the JSON metrics pipeline.

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "core/synthesizer.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_profile.hpp"
#include "obs/trace.hpp"
#include "rev/pprm_transform.hpp"
#include "rev/random.hpp"
#include "templates/simplify.hpp"

namespace rmrls {
namespace {

TruthTable fig1() { return TruthTable({1, 0, 7, 2, 3, 4, 5, 6}); }

/// The creation-side accounting identity documented on SynthesisStats.
void expect_counter_identity(const SynthesisStats& s) {
  EXPECT_EQ(s.children_created,
            s.children_pushed + s.solutions_found + s.pruned_elim +
                s.pruned_depth + s.pruned_max_gates + s.pruned_duplicate +
                s.pruned_greedy + s.dropped_queue_full);
}

TEST(ObsCounters, IdentityHoldsAcrossOptionVariants) {
  std::mt19937_64 rng(11);
  for (int i = 0; i < 4; ++i) {
    const TruthTable f = random_reversible_function(4, rng);
    SynthesisOptions basic;
    basic.max_nodes = 5000;
    expect_counter_identity(synthesize(f, basic).stats);

    SynthesisOptions greedy = basic;
    greedy.greedy_k = 3;
    greedy.max_gates = 12;
    expect_counter_identity(synthesize(f, greedy).stats);
  }
}

TEST(ObsCounters, MaxGatesPruningIsDistinguishable) {
  std::mt19937_64 rng(12);
  const TruthTable f = random_reversible_function(4, rng);
  SynthesisOptions options;
  options.max_nodes = 5000;
  options.max_gates = 3;  // almost certainly too tight for a random 4-var
  options.iterative_refinement = false;
  const SynthesisResult r = synthesize(f, options);
  EXPECT_GT(r.stats.pruned_max_gates, 0u);
  expect_counter_identity(r.stats);
}

TEST(ObsTrace, EventsMatchCounters) {
  RecordingTraceSink sink;
  SynthesisOptions options;
  options.max_nodes = 20000;
  options.trace_sink = &sink;
  const SynthesisResult r = synthesize(fig1(), options);
  ASSERT_TRUE(r.success);

  const SynthesisStats& s = r.stats;
  expect_counter_identity(s);
  EXPECT_EQ(sink.count(TraceEventKind::kNodeExpanded), s.nodes_expanded);
  EXPECT_EQ(sink.count(TraceEventKind::kSolutionFound), s.solutions_found);
  EXPECT_EQ(sink.count(TraceEventKind::kRestart), s.restarts);
  EXPECT_EQ(sink.count(TraceEventKind::kQueueDrop), s.dropped_queue_full);
  EXPECT_EQ(sink.count(PruneReason::kElim), s.pruned_elim);
  EXPECT_EQ(sink.count(PruneReason::kDepth), s.pruned_depth);
  EXPECT_EQ(sink.count(PruneReason::kMaxGates), s.pruned_max_gates);
  EXPECT_EQ(sink.count(PruneReason::kDuplicate), s.pruned_duplicate);
  EXPECT_EQ(sink.count(PruneReason::kStale), s.pruned_stale);
  // Every Search pass (scout + refinement reruns) frames its events.
  EXPECT_GT(sink.count(TraceEventKind::kRunBegin), 0u);
  EXPECT_EQ(sink.count(TraceEventKind::kRunBegin),
            sink.count(TraceEventKind::kRunEnd));
  // Fig. 1 needs 3 gates, so at least one refinement rerun was announced.
  EXPECT_GE(sink.count(TraceEventKind::kRefinementRound), 1u);
  // Events inside one run carry a monotone node counter. (Refinement
  // rounds are driver events between runs and carry no counter.)
  std::uint64_t last = 0;
  for (const TraceEvent& e : sink.events) {
    if (e.kind == TraceEventKind::kRefinementRound) continue;
    if (e.kind == TraceEventKind::kRunBegin) last = 0;
    EXPECT_GE(e.nodes_expanded, last);
    last = e.nodes_expanded;
  }
}

TEST(ObsTrace, SamplingThinsHighFrequencyEventsOnly) {
  RecordingTraceSink dense;
  RecordingTraceSink sparse;
  SynthesisOptions options;
  options.max_nodes = 20000;
  options.trace_sink = &dense;
  const SynthesisResult a = synthesize(fig1(), options);
  options.trace_sink = &sparse;
  options.trace_sample_interval = 64;
  const SynthesisResult b = synthesize(fig1(), options);
  // Tracing must not disturb the search itself.
  EXPECT_EQ(a.stats.nodes_expanded, b.stats.nodes_expanded);
  EXPECT_LT(sparse.count(TraceEventKind::kNodeExpanded),
            dense.count(TraceEventKind::kNodeExpanded));
  EXPECT_EQ(sparse.count(TraceEventKind::kSolutionFound),
            dense.count(TraceEventKind::kSolutionFound));
  EXPECT_EQ(sparse.count(TraceEventKind::kRunBegin),
            dense.count(TraceEventKind::kRunBegin));
}

TEST(ObsTrace, JsonlEventsParseAndRoundTrip) {
  std::ostringstream out;
  JsonlTraceSink sink(out);
  SynthesisOptions options;
  options.max_nodes = 2000;
  options.trace_sink = &sink;
  (void)synthesize(fig1(), options);

  std::istringstream lines(out.str());
  std::string line;
  std::uint64_t events = 0;
  std::uint64_t solutions = 0;
  while (std::getline(lines, line)) {
    ++events;
    const auto v = json_parse(line);
    ASSERT_TRUE(v.has_value()) << line;
    ASSERT_TRUE(v->is_object());
    const JsonValue* ev = v->find("ev");
    ASSERT_NE(ev, nullptr);
    ASSERT_TRUE(ev->is_string());
    if (ev->string == "solution_found") ++solutions;
    ASSERT_NE(v->find("nodes"), nullptr);
    ASSERT_NE(v->find("t_us"), nullptr);
    if (ev->string == "child_pruned") {
      const JsonValue* reason = v->find("reason");
      ASSERT_NE(reason, nullptr);
      EXPECT_TRUE(reason->string == "elim" || reason->string == "depth" ||
                  reason->string == "max_gates" ||
                  reason->string == "duplicate" ||
                  reason->string == "stale");
    }
  }
  EXPECT_GT(events, 0u);
  EXPECT_GT(solutions, 0u);
}

TEST(ObsPhases, ProfileCoversEngineAndTransformAndTemplates) {
  PhaseProfile profile;
  SynthesisOptions options;
  options.max_nodes = 20000;
  options.phase_profile = &profile;
  const SynthesisResult r = synthesize(fig1(), options);
  ASSERT_TRUE(r.success);
  EXPECT_GT(profile[Phase::kPprmTransform].calls, 0u);
  EXPECT_GT(profile[Phase::kFactorEnum].calls, 0u);
  EXPECT_GT(profile[Phase::kSubstitute].calls, 0u);
  EXPECT_GT(profile[Phase::kHeapOps].calls, 0u);
  EXPECT_EQ(profile[Phase::kTemplateSimplify].calls, 0u);
  EXPECT_GT(profile.total_nanos(), 0u);

  (void)simplify_templates(r.circuit, &profile);
  EXPECT_EQ(profile[Phase::kTemplateSimplify].calls, 1u);

  // Merging two profiles adds counters.
  PhaseProfile copy = profile;
  copy.merge(profile);
  EXPECT_EQ(copy[Phase::kFactorEnum].calls,
            2 * profile[Phase::kFactorEnum].calls);

  // Human rendering names the active phases.
  const std::string rendered = profile.to_string();
  EXPECT_NE(rendered.find("factor_enum"), std::string::npos);
  EXPECT_NE(rendered.find("pprm_transform"), std::string::npos);
}

TEST(ObsTermination, SolvedOnIdentityInput) {
  const TruthTable identity({0, 1, 2, 3});
  const SynthesisResult r = synthesize(identity);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.termination, TerminationReason::kSolved);
}

TEST(ObsTermination, SolvedWhenStopAtFirstFires) {
  SynthesisOptions options;
  options.stop_at_first_solution = true;
  options.max_nodes = 50000;
  const SynthesisResult r = synthesize(fig1(), options);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.termination, TerminationReason::kSolved);
}

TEST(ObsTermination, NodeBudgetWhenBudgetTooSmall) {
  std::mt19937_64 rng(13);
  const TruthTable f = random_reversible_function(4, rng);
  SynthesisOptions options;
  options.max_nodes = 1;
  const SynthesisResult r = synthesize(f, options);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.termination, TerminationReason::kNodeBudget);
}

TEST(ObsTermination, QueueExhaustedOnTinySolvedSearch) {
  // A one-variable NOT: the search finds the single gate and then drains
  // the (tiny) queue looking for something smaller.
  const SynthesisResult r = synthesize(TruthTable({1, 0}));
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.circuit.gate_count(), 1);
  EXPECT_EQ(r.termination, TerminationReason::kQueueExhausted);
}

TEST(ObsMetrics, RegistryEmitsValidSchemaAndRoundTrips) {
  PhaseProfile profile;
  SynthesisOptions options;
  options.max_nodes = 20000;
  options.phase_profile = &profile;
  const SynthesisResult r = synthesize(fig1(), options);
  ASSERT_TRUE(r.success);

  MetricsRegistry record;
  record.set("name", "fig1").set("vars", 3).set("success", r.success);
  record.add_stats(r.stats, r.termination);
  record.add_profile(profile);
  record.add_circuit(r.circuit);
  const std::string line = record.to_json();

  const auto v = json_parse(line);
  ASSERT_TRUE(v.has_value()) << line;
  for (const std::string& key : metrics_required_keys()) {
    EXPECT_NE(v->find(key), nullptr) << "missing " << key << " in " << line;
  }
  EXPECT_EQ(v->find("schema")->string, kMetricsSchema);
  EXPECT_EQ(v->find("name")->string, "fig1");
  EXPECT_EQ(static_cast<std::uint64_t>(v->find("nodes_expanded")->number),
            r.stats.nodes_expanded);
  EXPECT_EQ(static_cast<int>(v->find("gates")->number),
            r.circuit.gate_count());
  const JsonValue* phases = v->find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_TRUE(phases->is_object());
  const JsonValue* factor = phases->find("factor_enum");
  ASSERT_NE(factor, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(factor->find("calls")->number),
            profile[Phase::kFactorEnum].calls);
}

TEST(ObsJson, EscapingAndParserEdges) {
  JsonObject o;
  o.field("k", "a\"b\\c\n\t\x01");
  const std::string line = o.str();
  const auto v = json_parse(line);
  ASSERT_TRUE(v.has_value()) << line;
  EXPECT_EQ(v->find("k")->string, "a\"b\\c\n\t\x01");

  EXPECT_TRUE(json_parse("{}").has_value());
  EXPECT_TRUE(json_parse("[1, 2.5, -3e2, true, null, \"x\"]").has_value());
  EXPECT_FALSE(json_parse("{").has_value());
  EXPECT_FALSE(json_parse("{} trailing").has_value());
  EXPECT_FALSE(json_parse("{'single': 1}").has_value());
  EXPECT_FALSE(json_parse("{\"a\": 01x}").has_value());

  const auto nested = json_parse("{\"a\": {\"b\": [1, {\"c\": false}]}}");
  ASSERT_TRUE(nested.has_value());
  EXPECT_EQ(nested->find("a")->find("b")->array[1].find("c")->boolean,
            false);
}

TEST(ObsTrace, NullAndMultiSinksBehave) {
  NullTraceSink null_sink;
  RecordingTraceSink rec;
  MultiTraceSink multi;
  multi.add(&null_sink);
  multi.add(&rec);
  multi.add(nullptr);  // ignored
  SynthesisOptions options;
  options.max_nodes = 2000;
  options.trace_sink = &multi;
  const SynthesisResult r = synthesize(fig1(), options);
  EXPECT_EQ(rec.count(TraceEventKind::kNodeExpanded),
            r.stats.nodes_expanded);
}

}  // namespace
}  // namespace rmrls
