// Tests for the live-telemetry layer (obs/telemetry.hpp): instrument
// arithmetic under concurrent hammering (run under TSan via the
// concurrency label), log2 bucket boundaries and quantile estimation,
// registry enable/disable/reset semantics, the Snapshotter's lifecycle
// (periodic heartbeats + flush-on-stop), trace_id propagation through a
// real run_batch, and the shared MetricsValidator rules for both the v1
// and v2 schemas.

#include "obs/telemetry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/batch.hpp"
#include "obs/metrics_validate.hpp"
#include "rev/random.hpp"

namespace rmrls {
namespace {

// ---------------------------------------------------------------- counters

TEST(TelemetryCounter, ConcurrentIncrementsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(TelemetryGauge, SetAddRoundTrip) {
  Gauge g;
  g.set(42);
  EXPECT_EQ(g.value(), 42);
  g.add(-50);
  EXPECT_EQ(g.value(), -8);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

// --------------------------------------------------------------- histogram

TEST(TelemetryHistogram, BucketBoundaries) {
  // Bucket b holds values of bit width b: 0 -> 0, 1 -> 1, 2..3 -> 2, ...
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 1);
  EXPECT_EQ(Histogram::bucket_of(2), 2);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(4), 3);
  EXPECT_EQ(Histogram::bucket_of(7), 3);
  EXPECT_EQ(Histogram::bucket_of(8), 4);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), 64);
  // Upper edges are 2^b - 1; the last bucket saturates at uint64 max.
  EXPECT_EQ(Histogram::bucket_upper(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper(1), 1u);
  EXPECT_EQ(Histogram::bucket_upper(2), 3u);
  EXPECT_EQ(Histogram::bucket_upper(10), 1023u);
  EXPECT_EQ(Histogram::bucket_upper(64), ~std::uint64_t{0});
  // Round trip: every value lands in a bucket whose edge bounds it.
  for (const std::uint64_t v : {0ull, 1ull, 2ull, 5ull, 100ull, 65536ull}) {
    const int b = Histogram::bucket_of(v);
    EXPECT_LE(v, Histogram::bucket_upper(b));
    if (b > 0) EXPECT_GT(v, Histogram::bucket_upper(b - 1));
  }
}

TEST(TelemetryHistogram, ConcurrentRecordsPreserveCountAndSum) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.record(static_cast<std::uint64_t>(t));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  // Sum of 0..7, kPerThread times each.
  EXPECT_EQ(h.sum(), kPerThread * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7));
  // 0 -> bucket 0; 1 -> bucket 1; 2,3 -> bucket 2; 4..7 -> bucket 3.
  EXPECT_EQ(h.bucket(0), kPerThread);
  EXPECT_EQ(h.bucket(1), kPerThread);
  EXPECT_EQ(h.bucket(2), 2 * kPerThread);
  EXPECT_EQ(h.bucket(3), 4 * kPerThread);
}

TEST(TelemetryHistogram, SnapshotQuantilesWalkBucketEdges) {
  Telemetry& t = Telemetry::registry();
  t.reset();
  Histogram& h = t.histogram("test.quantile");
  h.reset();
  // 90 small values (bucket 3, upper edge 7) and 10 large (bucket 11,
  // upper edge 2047): p50 must report the small edge, p99 the large one.
  for (int i = 0; i < 90; ++i) h.record(5);
  for (int i = 0; i < 10; ++i) h.record(2000);
  const TelemetrySnapshot snap = t.snapshot();
  const HistogramSnapshot* found = nullptr;
  for (const auto& [name, hs] : snap.histograms) {
    if (name == "test.quantile") found = &hs;
  }
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->count, 100u);
  EXPECT_EQ(found->quantile(0.50), 7u);
  EXPECT_EQ(found->quantile(0.99), 2047u);
  EXPECT_EQ(found->quantile(1.0), 2047u);
  t.reset();
}

// ---------------------------------------------------------------- registry

TEST(TelemetryRegistry, HandlesAreStableAndNamed) {
  Telemetry& t = Telemetry::registry();
  t.reset();
  Counter& a = t.counter("test.stable");
  Counter& b = t.counter("test.stable");
  EXPECT_EQ(&a, &b);  // same name, same instrument
  a.inc();
  EXPECT_EQ(b.value(), 1u);
  // find_* never creates.
  EXPECT_EQ(t.find_counter("test.never_created"), nullptr);
  EXPECT_EQ(t.find_gauge("test.never_created"), nullptr);
  EXPECT_EQ(t.find_counter("test.stable"), &a);
  t.reset();
  EXPECT_EQ(a.value(), 0u);  // reset zeroes but keeps the handle valid
}

TEST(TelemetryRegistry, EnableDisableTogglesActive) {
  Telemetry::disable();
  EXPECT_EQ(Telemetry::active(), nullptr);
  Telemetry& t = Telemetry::enable();
  EXPECT_EQ(Telemetry::active(), &t);
  EXPECT_EQ(&Telemetry::enable(), &t);  // idempotent
  Telemetry::disable();
  EXPECT_EQ(Telemetry::active(), nullptr);
}

TEST(TelemetryRegistry, ConcurrentRegistrationIsSafe) {
  Telemetry& t = Telemetry::registry();
  t.reset();
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&t, w] {
      for (int i = 0; i < 200; ++i) {
        // Mix of shared and thread-private names: the map insert path and
        // the shared-lock fast path race against each other.
        t.counter("test.shared").inc();
        t.counter("test.w" + std::to_string(w)).inc();
        t.gauge("test.gauge").set(i);
        t.histogram("test.hist").record(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(t.counter("test.shared").value(), 8u * 200u);
  EXPECT_EQ(t.histogram("test.hist").count(), 8u * 200u);
  t.reset();
}

TEST(TraceIdHex, SixteenLowercaseHexDigits) {
  EXPECT_EQ(trace_id_hex(0), "0000000000000000");
  EXPECT_EQ(trace_id_hex(0xdeadbeef), "00000000deadbeef");
  EXPECT_EQ(trace_id_hex(~std::uint64_t{0}), "ffffffffffffffff");
}

// -------------------------------------------------------------- snapshotter

TEST(Snapshotter, StopFlushesAtLeastOneHeartbeat) {
  Telemetry& t = Telemetry::registry();
  t.reset();
  t.counter("test.flush").add(3);
  std::ostringstream out;
  {
    // Interval far longer than the test: only the flush-on-stop record.
    Snapshotter snap(t, std::chrono::milliseconds(60000), out);
    snap.stop();
    EXPECT_GE(snap.emitted(), 1u);
    snap.stop();  // idempotent
  }
  MetricsValidator validator;
  std::istringstream lines(out.str());
  std::string line;
  std::uint64_t n = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    ++n;
    EXPECT_TRUE(validator.check_line(line, "flush:" + std::to_string(n)));
  }
  EXPECT_GE(n, 1u);
  EXPECT_TRUE(validator.errors().empty())
      << (validator.errors().empty() ? "" : validator.errors().front());
  EXPECT_NE(out.str().find("\"test.flush\":3"), std::string::npos);
  t.reset();
}

TEST(Snapshotter, PeriodicHeartbeatsValidateAndStayMonotone) {
  Telemetry& t = Telemetry::registry();
  t.reset();
  t.histogram("test.periodic").record(100);
  std::ostringstream out;
  Snapshotter snap(t, std::chrono::milliseconds(5), out);
  while (snap.emitted() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  snap.stop();
  EXPECT_GE(snap.emitted(), 3u);
  // The validator enforces strictly-increasing seq and monotone
  // uptime_ns across the stream.
  MetricsValidator validator;
  validator.begin_stream();
  std::istringstream lines(out.str());
  std::string line;
  std::uint64_t n = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    ++n;
    EXPECT_TRUE(validator.check_line(line, "hb:" + std::to_string(n)))
        << line;
  }
  EXPECT_EQ(n, snap.emitted());
  EXPECT_EQ(validator.heartbeats(), n);
  EXPECT_TRUE(validator.errors().empty())
      << (validator.errors().empty() ? "" : validator.errors().front());
  t.reset();
}

// ------------------------------------------------- batch span correlation

TEST(BatchTraceIds, AssignedUniquePerJobWhenArmed) {
  Telemetry& t = Telemetry::enable();
  t.reset();
  std::mt19937_64 rng(7);
  std::vector<BatchJob> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(
        BatchJob{"j" + std::to_string(i), random_reversible_function(3, rng)});
  }
  BatchOptions options;
  options.total_threads = 2;
  const BatchResult result = run_batch(jobs, options);
  Telemetry::disable();
  EXPECT_TRUE(result.status.ok());
  std::vector<std::uint64_t> ids;
  for (const BatchJobOutcome& out : result.outcomes) {
    EXPECT_NE(out.trace_id, 0u) << out.name;
    ids.push_back(out.trace_id);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end())
      << "trace ids must be distinct across jobs";
  // The batch gauges saw the run: every job completed, none in flight.
  EXPECT_EQ(t.gauge("batch.jobs_completed").value(),
            static_cast<std::int64_t>(jobs.size()));
  EXPECT_EQ(t.gauge("batch.jobs_inflight").value(), 0);
  EXPECT_EQ(t.histogram("batch.job_us").count(), jobs.size());
  // Nothing left in the active set once every job finished.
  EXPECT_TRUE(t.snapshot().active.empty());
  t.reset();
}

TEST(BatchTraceIds, ZeroWhenTelemetryDisabled) {
  Telemetry::disable();
  std::mt19937_64 rng(8);
  std::vector<BatchJob> jobs;
  jobs.push_back(BatchJob{"only", random_reversible_function(3, rng)});
  const BatchResult result = run_batch(jobs, {});
  EXPECT_TRUE(result.status.ok());
  ASSERT_EQ(result.outcomes.size(), 1u);
  // Disabled runs carry no ids — the byte-identical-output guarantee.
  EXPECT_EQ(result.outcomes[0].trace_id, 0u);
}

// ----------------------------------------------------- validator coverage

std::string valid_v1_record() {
  return R"({"schema":"rmrls-metrics-v1","name":"t","success":true,)"
         R"("termination":"solved","elapsed_us":10,"nodes_expanded":5,)"
         R"("children_created":9,"children_pushed":8,"solutions_found":1,)"
         R"("workers":1,"dense_kernel":false,"representation_switches":0,)"
         R"("cancelled":false,"watchdog_fired":false,"gates":3,)"
         R"("quantum_cost":7})";
}

TEST(MetricsValidatorRules, AcceptsV1AndRejectsBrokenV1) {
  {
    MetricsValidator v;
    EXPECT_TRUE(v.check_line(valid_v1_record(), "ok"));
    EXPECT_TRUE(v.errors().empty());
  }
  {
    // trace_id must be 16 hex digits when present.
    MetricsValidator v;
    std::string bad = valid_v1_record();
    bad.insert(bad.size() - 1, R"(,"trace_id":"xyz")");
    EXPECT_FALSE(v.check_line(bad, "bad-id"));
  }
  {
    MetricsValidator v;
    std::string good = valid_v1_record();
    good.insert(good.size() - 1, R"(,"trace_id":"00c0ffee00c0ffee")");
    EXPECT_TRUE(v.check_line(good, "good-id")) << v.errors().front();
  }
  {
    // success:true with gates:-1 is inconsistent.
    MetricsValidator v;
    std::string bad = valid_v1_record();
    const auto pos = bad.find("\"gates\":3");
    bad.replace(pos, 9, "\"gates\":-1");
    EXPECT_FALSE(v.check_line(bad, "bad-gates"));
  }
}

TEST(MetricsValidatorRules, HeartbeatInvariants) {
  const std::string good =
      R"({"schema":"rmrls-metrics-v2","record":"heartbeat","seq":0,)"
      R"("uptime_ns":100,"mono_ns":5,"counters":{"c":1},"gauges":{"g":-2},)"
      R"("histograms":{"h":{"count":3,"sum":9,"buckets":[1,2]}},)"
      R"("active":["00000000deadbeef"]})";
  {
    MetricsValidator v;
    v.begin_stream();
    EXPECT_TRUE(v.check_line(good, "hb")) << v.errors().front();
    EXPECT_EQ(v.heartbeats(), 1u);
  }
  {
    // Bucket counts must sum to the histogram count.
    MetricsValidator v;
    std::string bad = good;
    const auto pos = bad.find("\"count\":3");
    bad.replace(pos, 9, "\"count\":4");
    v.begin_stream();
    EXPECT_FALSE(v.check_line(bad, "hb-sum"));
  }
  {
    // seq must strictly increase within a stream, then reset across
    // streams (begin_stream).
    MetricsValidator v;
    v.begin_stream();
    EXPECT_TRUE(v.check_line(good, "hb1"));
    EXPECT_FALSE(v.check_line(good, "hb2-same-seq"));
    v.begin_stream();
    EXPECT_TRUE(v.check_line(good, "hb3-new-stream"));
  }
  {
    // Unknown v2 record kinds are rejected.
    MetricsValidator v;
    std::string bad = good;
    const auto pos = bad.find("heartbeat");
    bad.replace(pos, 9, "mystery12");
    v.begin_stream();
    EXPECT_FALSE(v.check_line(bad, "hb-kind"));
  }
}

}  // namespace
}  // namespace rmrls
